package gateway

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"wavelethpc/internal/image"
	"wavelethpc/internal/proto"
)

// noSleep records backoff waits without spending wall time.
func noSleep(recorded *[]time.Duration) sleepFunc {
	return func(ctx context.Context, d time.Duration) {
		*recorded = append(*recorded, d)
	}
}

// stubBackend is an httptest backend whose behavior a test scripts.
type stubBackend struct {
	srv   *httptest.Server
	hits  atomic.Int64
	reply atomic.Value // func(w http.ResponseWriter, r *http.Request)
}

func newStubBackend(t *testing.T) *stubBackend {
	t.Helper()
	b := &stubBackend{}
	b.reply.Store(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprint(w, "ok")
	})
	b.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body up front: with unread body bytes the server never
		// starts the background read that detects client disconnects, so a
		// stub blocking on r.Context() would hang Close forever.
		io.Copy(io.Discard, r.Body)
		b.hits.Add(1)
		b.reply.Load().(func(http.ResponseWriter, *http.Request))(w, r)
	}))
	t.Cleanup(b.srv.Close)
	return b
}

func (b *stubBackend) setReply(fn func(w http.ResponseWriter, r *http.Request)) {
	b.reply.Store(fn)
}

func newTestGateway(t *testing.T, cfg Config) *Gateway {
	t.Helper()
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1 // tests drive ProbeOnce explicitly
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Shutdown(context.Background()) })
	return g
}

// keyRankedFirst finds a RouteKey whose top-ranked backend is name.
func keyRankedFirst(t *testing.T, g *Gateway, name string) RouteKey {
	t.Helper()
	for i := 0; i < 4096; i++ {
		k := RouteKey{Rows: 64, Cols: 64, Bank: "db8", Levels: i + 1}
		if g.ranked(k.hash(g.cfg.Seed))[0].name == name {
			return k
		}
	}
	t.Fatalf("no key ranks %s first", name)
	return RouteKey{}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{},
		{Backends: []string{"not a url"}},
		{Backends: []string{"http://a:1", "http://a:1"}},
		{Backends: []string{"http://a:1"}, MaxRetries: -1},
		{Backends: []string{"http://a:1"}, HedgeAfter: -time.Second},
		{Backends: []string{"http://a:1"}, BreakerErrorRate: 1.5},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted invalid config %+v", i, cfg)
		}
	}
}

func TestRoutingAffinitySticky(t *testing.T) {
	b1, b2, b3 := newStubBackend(t), newStubBackend(t), newStubBackend(t)
	g := newTestGateway(t, Config{
		Backends: []string{b1.srv.URL, b2.srv.URL, b3.srv.URL},
		Seed:     42,
	})
	key := RouteKey{Rows: 512, Cols: 512, Bank: "db8", Levels: 3}
	var first string
	for i := 0; i < 10; i++ {
		res, err := g.Do(context.Background(), &Request{Path: "/v1/decompose", Body: []byte("x"), Key: key})
		if err != nil {
			t.Fatal(err)
		}
		if first == "" {
			first = res.Backend
		} else if res.Backend != first {
			t.Fatalf("request %d routed to %s, earlier ones to %s", i, res.Backend, first)
		}
	}
}

func TestRoutingSpreadsDistinctKeys(t *testing.T) {
	b1, b2, b3 := newStubBackend(t), newStubBackend(t), newStubBackend(t)
	g := newTestGateway(t, Config{
		Backends: []string{b1.srv.URL, b2.srv.URL, b3.srv.URL},
		Seed:     42,
	})
	seen := map[string]bool{}
	for i := 1; i <= 64; i++ {
		key := RouteKey{Rows: 32 * i, Cols: 32 * i, Bank: "db8", Levels: 3}
		res, err := g.Do(context.Background(), &Request{Path: "/v1/decompose", Body: []byte("x"), Key: key})
		if err != nil {
			t.Fatal(err)
		}
		seen[res.Backend] = true
	}
	if len(seen) != 3 {
		t.Fatalf("64 distinct keys reached %d backends, want 3", len(seen))
	}
}

// TestRendezvousMinimalRemap: dropping one backend must only remap the
// keys it owned — the point of rendezvous routing is that the surviving
// backends' Decomposer pools stay hot.
func TestRendezvousMinimalRemap(t *testing.T) {
	urls := []string{"http://10.0.0.1:9001", "http://10.0.0.2:9001", "http://10.0.0.3:9001"}
	gAll, err := New(Config{Backends: urls, Seed: 7, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer gAll.Shutdown(context.Background())
	gTwo, err := New(Config{Backends: urls[:2], Seed: 7, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer gTwo.Shutdown(context.Background())
	for i := 1; i <= 200; i++ {
		k := RouteKey{Rows: i, Cols: i, Bank: "db8", Levels: 3}
		ownerAll := gAll.ranked(k.hash(7))[0].name
		ownerTwo := gTwo.ranked(k.hash(7))[0].name
		if ownerAll != urls[2] && ownerAll != ownerTwo {
			t.Fatalf("key %d moved from %s to %s though its owner survived", i, ownerAll, ownerTwo)
		}
	}
}

func TestRetryReroutesAfter5xx(t *testing.T) {
	bad, good := newStubBackend(t), newStubBackend(t)
	bad.setReply(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	})
	var sleeps []time.Duration
	g := newTestGateway(t, Config{
		Backends: []string{bad.srv.URL, good.srv.URL},
		Seed:     1,
		Sleep:    noSleep(&sleeps),
	})
	key := keyRankedFirst(t, g, bad.srv.URL)
	res, err := g.Do(context.Background(), &Request{Path: "/v1/decompose", Body: []byte("x"), Key: key})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != good.srv.URL {
		t.Fatalf("served by %s, want reroute to %s", res.Backend, good.srv.URL)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", res.Attempts)
	}
	if len(sleeps) != 1 {
		t.Fatalf("backoff sleeps = %v, want exactly one", sleeps)
	}
	bm := g.Metrics().Backend(bad.srv.URL)
	if got := bm.Failures.Value(); got != 1 {
		t.Errorf("bad backend failures = %d, want 1", got)
	}
	if got := g.Metrics().Backend(good.srv.URL).Retries.Value(); got != 1 {
		t.Errorf("good backend retries = %d, want 1", got)
	}
}

func TestRetryReroutesAfterConnectionError(t *testing.T) {
	dead := newStubBackend(t)
	deadURL := dead.srv.URL
	dead.srv.Close() // port now refuses connections
	good := newStubBackend(t)
	var sleeps []time.Duration
	g := newTestGateway(t, Config{
		Backends: []string{deadURL, good.srv.URL},
		Seed:     1,
		Sleep:    noSleep(&sleeps),
	})
	key := keyRankedFirst(t, g, deadURL)
	res, err := g.Do(context.Background(), &Request{Path: "/v1/decompose", Body: []byte("x"), Key: key})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != good.srv.URL {
		t.Fatalf("served by %s, want %s", res.Backend, good.srv.URL)
	}
}

func TestForwardsBackend4xxWithoutRetry(t *testing.T) {
	b := newStubBackend(t)
	b.setReply(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad levels", http.StatusBadRequest)
	})
	g := newTestGateway(t, Config{Backends: []string{b.srv.URL}, Seed: 1})
	res, err := g.Do(context.Background(), &Request{Path: "/v1/decompose", Body: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 forwarded", res.Status)
	}
	if got := b.hits.Load(); got != 1 {
		t.Fatalf("backend hit %d times, want 1 (no retry on 4xx)", got)
	}
}

func TestAllBackendsDownTypedError(t *testing.T) {
	b1, b2 := newStubBackend(t), newStubBackend(t)
	u1, u2 := b1.srv.URL, b2.srv.URL
	b1.srv.Close()
	b2.srv.Close()
	var sleeps []time.Duration
	g := newTestGateway(t, Config{
		Backends: []string{u1, u2},
		Seed:     1,
		Sleep:    noSleep(&sleeps),
	})
	_, err := g.Do(context.Background(), &Request{Path: "/v1/decompose", Body: []byte("x")})
	var nb *NoBackendsError
	if !errors.As(err, &nb) {
		t.Fatalf("err = %v (%T), want *NoBackendsError", err, err)
	}
	if nb.Configured != 2 || nb.Tried == 0 || nb.Last == nil {
		t.Fatalf("NoBackendsError = %+v, want Configured 2, attempts recorded", nb)
	}
	if got := g.Metrics().NoBackends.Value(); got != 1 {
		t.Errorf("NoBackends counter = %d, want 1", got)
	}
}

func TestAllBreakersOpenFailsFastWithoutAttempts(t *testing.T) {
	b := newStubBackend(t)
	u := b.srv.URL
	b.srv.Close()
	var sleeps []time.Duration
	g := newTestGateway(t, Config{
		Backends:        []string{u},
		Seed:            1,
		BreakerFailures: 2,
		BreakerCooldown: time.Hour,
		Sleep:           noSleep(&sleeps),
	})
	// Trip the breaker.
	g.Do(context.Background(), &Request{Path: "/p", Body: []byte("x")})
	hitsBefore := g.Metrics().Backend(u).Requests.Value()
	start := time.Now()
	_, err := g.Do(context.Background(), &Request{Path: "/p", Body: []byte("x")})
	elapsed := time.Since(start)
	var nb *NoBackendsError
	if !errors.As(err, &nb) {
		t.Fatalf("err = %v, want *NoBackendsError", err)
	}
	if nb.Tried != 0 {
		t.Errorf("Tried = %d, want 0 (breaker refused up front)", nb.Tried)
	}
	if got := g.Metrics().Backend(u).Requests.Value(); got != hitsBefore {
		t.Errorf("open breaker still sent %d attempts", got-hitsBefore)
	}
	if elapsed > 100*time.Millisecond {
		t.Errorf("fast-fail took %v", elapsed)
	}
}

func TestDeadlineBudgetRespected(t *testing.T) {
	slow := newStubBackend(t)
	slow.setReply(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // never answers
	})
	g := newTestGateway(t, Config{
		Backends:     []string{slow.srv.URL},
		Seed:         1,
		AttemptFloor: 20 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := g.Do(ctx, &Request{Path: "/p", Body: []byte("x")})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected an error from a blackholed fleet")
	}
	// The failure must be one of the gateway's typed outcomes, not a raw
	// transport error: BudgetError when the budget check cut the loop
	// short, NoBackendsError when the attempt count ran out first.
	var be *BudgetError
	var nb *NoBackendsError
	if !errors.As(err, &be) && !errors.As(err, &nb) {
		t.Fatalf("want *BudgetError or *NoBackendsError, got %T: %v", err, err)
	}
	// The retry loop must give up at (or just past) the deadline, not
	// multiply it by the attempt count.
	if elapsed > 450*time.Millisecond {
		t.Fatalf("request outlived its deadline budget: %v", elapsed)
	}
}

func TestBackoffFormula(t *testing.T) {
	base, max := 5*time.Millisecond, 250*time.Millisecond
	cases := []struct {
		retry int
		u     float64
		want  time.Duration
	}{
		{1, 1, 5 * time.Millisecond},
		{2, 1, 10 * time.Millisecond},
		{3, 0.5, 10 * time.Millisecond},
		{7, 1, 250 * time.Millisecond}, // 5ms<<6 = 320ms, capped
		{40, 0.5, 125 * time.Millisecond},
		{1, 0, 0},
	}
	for _, c := range cases {
		if got := backoff(c.retry, base, max, c.u); got != c.want {
			t.Errorf("backoff(%d, u=%g) = %v, want %v", c.retry, c.u, got, c.want)
		}
	}
}

func TestJitterStreamDeterministic(t *testing.T) {
	a, b := &jitter{seed: 99}, &jitter{seed: 99}
	for i := 0; i < 100; i++ {
		va, vb := a.unit(), b.unit()
		if va != vb {
			t.Fatalf("jitter streams diverge at %d: %v vs %v", i, va, vb)
		}
		if va < 0 || va >= 1 {
			t.Fatalf("jitter %v outside [0, 1)", va)
		}
	}
	c := &jitter{seed: 100}
	same := 0
	for i := 0; i < 100; i++ {
		if a.unit() == c.unit() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d/100 times", same)
	}
}

func TestHedgedRequestWins(t *testing.T) {
	slow, fast := newStubBackend(t), newStubBackend(t)
	slow.setReply(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(2 * time.Second):
		case <-r.Context().Done():
			return
		}
		fmt.Fprint(w, "slow")
	})
	g := newTestGateway(t, Config{
		Backends:   []string{slow.srv.URL, fast.srv.URL},
		Seed:       1,
		HedgeAfter: 25 * time.Millisecond,
	})
	key := keyRankedFirst(t, g, slow.srv.URL)
	start := time.Now()
	res, err := g.Do(context.Background(), &Request{Path: "/p", Body: []byte("x"), Key: key})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != fast.srv.URL {
		t.Fatalf("served by %s, want hedge winner %s", res.Backend, fast.srv.URL)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedge did not cut tail latency: %v", elapsed)
	}
	bm := g.Metrics().Backend(fast.srv.URL)
	if got := bm.HedgesLaunched.Value(); got != 1 {
		t.Errorf("hedges launched = %d, want 1", got)
	}
	if got := bm.HedgesWon.Value(); got != 1 {
		t.Errorf("hedges won = %d, want 1", got)
	}
}

func TestDrainRejectsNewFinishesInFlight(t *testing.T) {
	release := make(chan struct{})
	slow := newStubBackend(t)
	slow.setReply(func(w http.ResponseWriter, r *http.Request) {
		<-release
		fmt.Fprint(w, "done")
	})
	g := newTestGateway(t, Config{Backends: []string{slow.srv.URL}, Seed: 1})
	type outcome struct {
		res *Result
		err error
	}
	inflight := make(chan outcome, 1)
	go func() {
		res, err := g.Do(context.Background(), &Request{Path: "/p", Body: []byte("x")})
		inflight <- outcome{res, err}
	}()
	// Wait until the request reaches the backend.
	for slow.hits.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- g.Shutdown(context.Background()) }()
	// Admission must close while the in-flight request still runs.
	for !g.Draining() {
		time.Sleep(time.Millisecond)
	}
	if _, err := g.Do(context.Background(), &Request{Path: "/p", Body: []byte("x")}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Do during drain = %v, want ErrDraining", err)
	}
	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned while a request was in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	o := <-inflight
	if o.err != nil || string(o.res.Body) != "done" {
		t.Fatalf("in-flight request = (%v, %v), want completed body", o.res, o.err)
	}
	if got := g.Metrics().Drained.Value(); got != 1 {
		t.Errorf("Drained counter = %d, want 1", got)
	}
}

func TestShutdownHonorsContext(t *testing.T) {
	slow := newStubBackend(t)
	release := make(chan struct{})
	slow.setReply(func(w http.ResponseWriter, r *http.Request) {
		<-release
	})
	g := newTestGateway(t, Config{Backends: []string{slow.srv.URL}, Seed: 1})
	go g.Do(context.Background(), &Request{Path: "/p", Body: []byte("x")})
	for slow.hits.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := g.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown with stuck request = %v, want DeadlineExceeded", err)
	}
	close(release)
}

func TestProbeOnceFeedsBreakers(t *testing.T) {
	healthy, sick := newStubBackend(t), newStubBackend(t)
	healthy.setReply(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"ready":true}`)
	})
	sick.setReply(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "saturated", http.StatusServiceUnavailable)
	})
	g := newTestGateway(t, Config{
		Backends:        []string{healthy.srv.URL, sick.srv.URL},
		Seed:            1,
		BreakerFailures: 2,
	})
	for i := 0; i < 2; i++ {
		g.ProbeOnce(context.Background())
	}
	states := g.BreakerStates()
	if states[healthy.srv.URL] != BreakerClosed {
		t.Errorf("healthy backend state = %v, want closed", states[healthy.srv.URL])
	}
	if states[sick.srv.URL] != BreakerOpen {
		t.Errorf("sick backend state = %v, want open", states[sick.srv.URL])
	}
	if got := g.Metrics().Backend(sick.srv.URL).ProbeFailures.Value(); got != 2 {
		t.Errorf("probe failures = %d, want 2", got)
	}
}

func TestHandlerEndToEnd(t *testing.T) {
	backend := newStubBackend(t)
	backend.setReply(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/decompose":
			w.Header().Set("Content-Type", "image/x-portable-graymap")
			fmt.Fprint(w, "decomposed")
		case "/v1/banks":
			fmt.Fprint(w, "db8\nhaar\n")
		default:
			http.NotFound(w, r)
		}
	})
	g := newTestGateway(t, Config{Backends: []string{backend.srv.URL}, Seed: 1})
	h := g.Handler()

	var buf bytes.Buffer
	if err := image.WritePGM(&buf, image.Landsat(32, 32, 3)); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/decompose?bank=db8&levels=3", bytes.NewReader(buf.Bytes()))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Body.String() != "decomposed" {
		t.Fatalf("decompose = %d %q", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Wavegate-Backend"); got != backend.srv.URL {
		t.Errorf("X-Wavegate-Backend = %q, want %q", got, backend.srv.URL)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/banks", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "db8") {
		t.Fatalf("banks = %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ready":true`) {
		t.Fatalf("readyz = %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "wavegate_admitted_total 2") {
		t.Fatalf("metrics = %d %q", rec.Code, rec.Body.String())
	}

	// Drain: the HTTP surface must 503 everywhere relevant.
	if err := g.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/decompose", strings.NewReader("P5")))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("decompose during drain = %d, want 503", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", rec.Code)
	}
}

// TestSniffPGMShape exercises the shape sniffer (now shared via
// internal/proto) against the routing-affinity cases this package cares
// about.
func TestSniffPGMShape(t *testing.T) {
	cases := []struct {
		in         string
		rows, cols int
		ok         bool
	}{
		{"P5 640 480 255\n", 480, 640, true},
		{"P5\n# comment\n640\t480\n255\n", 480, 640, true},
		{"P5\n#c1\n#c2\n7 9\n255\n", 9, 7, true},
		{"P6 640 480 255\n", 0, 0, false},
		{"P5", 0, 0, false},
		{"P5 abc def", 0, 0, false},
		{"P5 0 480 255\n", 0, 0, false},
		{"", 0, 0, false},
	}
	for _, c := range cases {
		rows, cols, ok := proto.SniffPGMShape([]byte(c.in))
		if rows != c.rows || cols != c.cols || ok != c.ok {
			t.Errorf("SniffPGMShape(%q) = (%d, %d, %v), want (%d, %d, %v)",
				c.in, rows, cols, ok, c.rows, c.cols, c.ok)
		}
	}
}

func TestRouteKeyHashSensitivity(t *testing.T) {
	base := RouteKey{Rows: 512, Cols: 512, Bank: "db8", Levels: 3}
	variants := []RouteKey{
		{Rows: 256, Cols: 512, Bank: "db8", Levels: 3},
		{Rows: 512, Cols: 256, Bank: "db8", Levels: 3},
		{Rows: 512, Cols: 512, Bank: "db4", Levels: 3},
		{Rows: 512, Cols: 512, Bank: "db8", Levels: 2},
	}
	h := base.hash(42)
	for _, v := range variants {
		if v.hash(42) == h {
			t.Errorf("key %+v collides with base", v)
		}
	}
	if base.hash(42) != base.hash(42) {
		t.Error("hash is not a pure function")
	}
	if base.hash(42) == base.hash(43) {
		t.Error("seed does not salt the hash")
	}
}

func TestBudgetArithmetic(t *testing.T) {
	clk := newFakeClock()
	deadline := clk.t.Add(time.Second)
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	bud := newBudget(ctx, clk.now)
	if got := bud.remaining(); got != time.Second {
		t.Fatalf("remaining = %v, want 1s", got)
	}
	if !bud.allows(100*time.Millisecond, 50*time.Millisecond) {
		t.Error("budget should fund 100ms sleep + 50ms attempt inside 1s")
	}
	if bud.allows(900*time.Millisecond, 200*time.Millisecond) {
		t.Error("budget overcommitted past the deadline")
	}
	// Even split across remaining attempts.
	if got := bud.attemptTimeout(4, 10*time.Millisecond); got != 250*time.Millisecond {
		t.Errorf("attemptTimeout(4) = %v, want 250ms", got)
	}
	clk.advance(990 * time.Millisecond)
	if got := bud.attemptTimeout(4, 50*time.Millisecond); got != 50*time.Millisecond {
		t.Errorf("attemptTimeout near deadline = %v, want the 50ms floor", got)
	}
	// No deadline: effectively unbounded.
	free := newBudget(context.Background(), clk.now)
	if !free.allows(time.Minute, time.Minute) {
		t.Error("deadline-free budget refused a sleep")
	}
}

// TestMetricsExpositionFormat pins the Prometheus text exposition byte
// for byte: dashboards and scrapers parse this surface, so a rename or
// reorder must show up as a deliberate golden-file change.
func TestMetricsExpositionFormat(t *testing.T) {
	m := newGatewayMetrics([]string{"http://b.example:1", "http://a.example:1"})
	m.Admitted.Add(3)
	m.Completed.Add(2)
	m.Drained.Add(1)
	a := m.Backend("http://a.example:1")
	a.Requests.Add(2)
	a.Successes.Add(2)
	b := m.Backend("http://b.example:1")
	b.Requests.Add(1)
	b.Failures.Add(1)
	b.Retries.Add(1)
	b.BreakerOpened.Add(1)
	m.CacheHits.Add(5)
	m.CacheMisses.Add(4)
	m.TiledRequests.Add(1)
	m.TileStripes.Add(3)

	var buf bytes.Buffer
	if err := m.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP wavegate_admitted_total requests accepted for routing
# TYPE wavegate_admitted_total counter
wavegate_admitted_total 3
# HELP wavegate_completed_total requests answered with a backend response
# TYPE wavegate_completed_total counter
wavegate_completed_total 2
# HELP wavegate_drained_total requests refused during drain
# TYPE wavegate_drained_total counter
wavegate_drained_total 1
# HELP wavegate_no_backends_total requests failed with NoBackendsError
# TYPE wavegate_no_backends_total counter
wavegate_no_backends_total 0
# HELP wavegate_budget_exhausted_total requests cut short by the deadline budget
# TYPE wavegate_budget_exhausted_total counter
wavegate_budget_exhausted_total 0
# HELP wavegate_cache_hits_total decompose requests answered from the result cache
# TYPE wavegate_cache_hits_total counter
wavegate_cache_hits_total 5
# HELP wavegate_cache_misses_total decompose requests that filled the result cache
# TYPE wavegate_cache_misses_total counter
wavegate_cache_misses_total 4
# HELP wavegate_cache_evictions_total cache entries evicted to hold the byte budget
# TYPE wavegate_cache_evictions_total counter
wavegate_cache_evictions_total 0
# HELP wavegate_tiled_total decompose requests served by distributed tiling
# TYPE wavegate_tiled_total counter
wavegate_tiled_total 1
# HELP wavegate_tile_stripes_total stripe sub-requests fanned out by tiling
# TYPE wavegate_tile_stripes_total counter
wavegate_tile_stripes_total 3
# HELP wavegate_backend_requests_total attempts routed at the backend
# TYPE wavegate_backend_requests_total counter
wavegate_backend_requests_total{backend="http://a.example:1"} 2
wavegate_backend_requests_total{backend="http://b.example:1"} 1
# HELP wavegate_backend_successes_total attempts that returned a usable response
# TYPE wavegate_backend_successes_total counter
wavegate_backend_successes_total{backend="http://a.example:1"} 2
wavegate_backend_successes_total{backend="http://b.example:1"} 0
# HELP wavegate_backend_failures_total attempts that failed retryably
# TYPE wavegate_backend_failures_total counter
wavegate_backend_failures_total{backend="http://a.example:1"} 0
wavegate_backend_failures_total{backend="http://b.example:1"} 1
# HELP wavegate_backend_retries_total retry attempts landed on the backend
# TYPE wavegate_backend_retries_total counter
wavegate_backend_retries_total{backend="http://a.example:1"} 0
wavegate_backend_retries_total{backend="http://b.example:1"} 1
# HELP wavegate_backend_hedges_launched_total hedge attempts fired at the backend
# TYPE wavegate_backend_hedges_launched_total counter
wavegate_backend_hedges_launched_total{backend="http://a.example:1"} 0
wavegate_backend_hedges_launched_total{backend="http://b.example:1"} 0
# HELP wavegate_backend_hedges_won_total hedge attempts that beat the primary
# TYPE wavegate_backend_hedges_won_total counter
wavegate_backend_hedges_won_total{backend="http://a.example:1"} 0
wavegate_backend_hedges_won_total{backend="http://b.example:1"} 0
# HELP wavegate_backend_breaker_opened_total breaker transitions into open
# TYPE wavegate_backend_breaker_opened_total counter
wavegate_backend_breaker_opened_total{backend="http://a.example:1"} 0
wavegate_backend_breaker_opened_total{backend="http://b.example:1"} 1
# HELP wavegate_backend_breaker_half_opened_total breaker transitions into half-open
# TYPE wavegate_backend_breaker_half_opened_total counter
wavegate_backend_breaker_half_opened_total{backend="http://a.example:1"} 0
wavegate_backend_breaker_half_opened_total{backend="http://b.example:1"} 0
# HELP wavegate_backend_breaker_closed_total breaker transitions into closed
# TYPE wavegate_backend_breaker_closed_total counter
wavegate_backend_breaker_closed_total{backend="http://a.example:1"} 0
wavegate_backend_breaker_closed_total{backend="http://b.example:1"} 0
# HELP wavegate_backend_probe_failures_total failed active health probes
# TYPE wavegate_backend_probe_failures_total counter
wavegate_backend_probe_failures_total{backend="http://a.example:1"} 0
wavegate_backend_probe_failures_total{backend="http://b.example:1"} 0
# HELP wavegate_latency_seconds admission-to-outcome latency
# TYPE wavegate_latency_seconds histogram
wavegate_latency_seconds_bucket{le="0.0001"} 0
wavegate_latency_seconds_bucket{le="0.00025"} 0
wavegate_latency_seconds_bucket{le="0.0005"} 0
wavegate_latency_seconds_bucket{le="0.001"} 0
wavegate_latency_seconds_bucket{le="0.0025"} 0
wavegate_latency_seconds_bucket{le="0.005"} 0
wavegate_latency_seconds_bucket{le="0.01"} 0
wavegate_latency_seconds_bucket{le="0.025"} 0
wavegate_latency_seconds_bucket{le="0.05"} 0
wavegate_latency_seconds_bucket{le="0.1"} 0
wavegate_latency_seconds_bucket{le="0.25"} 0
wavegate_latency_seconds_bucket{le="0.5"} 0
wavegate_latency_seconds_bucket{le="1"} 0
wavegate_latency_seconds_bucket{le="2.5"} 0
wavegate_latency_seconds_bucket{le="5"} 0
wavegate_latency_seconds_bucket{le="10"} 0
wavegate_latency_seconds_bucket{le="+Inf"} 0
wavegate_latency_seconds_sum 0
wavegate_latency_seconds_count 0
`
	if got := buf.String(); got != want {
		t.Errorf("exposition format drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
