package gateway

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"wavelethpc/internal/fault"
)

// FaultMode is one way the chaos proxy can break a backend round trip.
type FaultMode int

const (
	// FaultLatency delays the request by Rule.Latency, then forwards it.
	FaultLatency FaultMode = iota
	// Fault5xx swallows the request and synthesizes a 503 burst — the
	// backend never sees it.
	Fault5xx
	// FaultReset fails the round trip immediately with a synthetic
	// connection-reset error.
	FaultReset
	// FaultBlackhole never answers: the round trip blocks until the
	// request context ends (a dead node that still accepts SYNs).
	FaultBlackhole
)

// String names the mode for error text and logs.
func (m FaultMode) String() string {
	switch m {
	case FaultLatency:
		return "latency"
	case Fault5xx:
		return "5xx"
	case FaultReset:
		return "reset"
	case FaultBlackhole:
		return "blackhole"
	}
	return "unknown"
}

// FaultRule injects one fault mode at one backend over a window of that
// backend's request sequence numbers. Prob < 1 makes the injection
// probabilistic but still deterministic: the decision for request n is
// keyed on (Seed, backend index, rule index, n) through the SplitMix64
// discipline of internal/fault, so a pinned seed replays a pinned
// schedule regardless of goroutine interleaving.
type FaultRule struct {
	// Backend matches the target by substring of the request host (or
	// full URL); empty matches every backend.
	Backend string
	// From and To bound the affected per-backend request sequence
	// numbers, half-open [From, To); To = 0 means no upper bound.
	From, To uint64
	// Prob is the per-request injection probability (0 treated as 1:
	// an unconditional rule).
	Prob float64
	// Mode is what happens to an affected request.
	Mode FaultMode
	// Latency is the injected delay for FaultLatency.
	Latency time.Duration
}

// FaultProxy is an http.RoundTripper that injects a deterministic fault
// schedule between the gateway and its backends — the in-process stand-in
// for dying nodes, overloaded shards, and flaky links. Wrap it around a
// real transport and hand it to Config.Transport.
type FaultProxy struct {
	// Seed keys every probabilistic decision.
	Seed uint64
	// Rules is the schedule, evaluated in order; the first matching rule
	// that fires wins.
	Rules []FaultRule
	// Next performs the real round trip (http.DefaultTransport when nil).
	Next http.RoundTripper

	mu sync.Mutex
	// seq counts requests per backend host — the deterministic clock the
	// schedule runs on.
	seq map[string]uint64
	// injected counts fired rules per backend host, for test assertions
	// and determinism checks.
	injected map[string]map[FaultMode]uint64
	// backendIndex pins each host to a stable decision-stream index in
	// first-seen order (the gateway's configuration order, since the
	// prober and router run on one gateway).
	backendIndex map[string]int
}

// resetError is the synthetic transport failure of FaultReset.
type resetError struct{ host string }

func (e *resetError) Error() string {
	return fmt.Sprintf("faultproxy: connection reset by %s (injected)", e.host)
}

// Timeout and Temporary mark the error retryable to net-aware callers.
func (e *resetError) Timeout() bool   { return false }
func (e *resetError) Temporary() bool { return true }

// faultProxySalt separates the proxy's decision stream from the fault
// package's drop/corrupt streams and the gateway jitter.
const faultProxySalt = 0xa0761d6478bd642f

// RoundTrip implements http.RoundTripper.
func (p *FaultProxy) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	p.mu.Lock()
	if p.seq == nil {
		p.seq = map[string]uint64{}
		p.injected = map[string]map[FaultMode]uint64{}
		p.backendIndex = map[string]int{}
	}
	idx, ok := p.backendIndex[host]
	if !ok {
		idx = len(p.backendIndex)
		p.backendIndex[host] = idx
	}
	n := p.seq[host]
	p.seq[host] = n + 1
	rule, fired := p.match(host, idx, n)
	if fired {
		if p.injected[host] == nil {
			p.injected[host] = map[FaultMode]uint64{}
		}
		p.injected[host][rule.Mode]++
	}
	p.mu.Unlock()
	if !fired {
		return p.next().RoundTrip(req)
	}
	switch rule.Mode {
	case FaultLatency:
		if err := sleepCtx(req.Context(), rule.Latency); err != nil {
			return nil, err
		}
		return p.next().RoundTrip(req)
	case Fault5xx:
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		body := "faultproxy: injected 503 burst\n"
		return &http.Response{
			StatusCode:    http.StatusServiceUnavailable,
			Status:        "503 Service Unavailable",
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case FaultReset:
		return nil, &resetError{host: host}
	case FaultBlackhole:
		<-req.Context().Done()
		return nil, fmt.Errorf("faultproxy: blackholed %s: %w", host, req.Context().Err())
	}
	return p.next().RoundTrip(req)
}

// match must be called with mu held: it finds the first rule that covers
// (host, n) and wins its probability draw.
func (p *FaultProxy) match(host string, idx int, n uint64) (FaultRule, bool) {
	for ri, r := range p.Rules {
		if r.Backend != "" && !strings.Contains(host, r.Backend) {
			continue
		}
		if n < r.From || (r.To > 0 && n >= r.To) {
			continue
		}
		prob := r.Prob
		if prob == 0 {
			prob = 1
		}
		if prob < 1 && fault.Unit(p.Seed, faultProxySalt, idx, ri, int(r.Mode), n) >= prob {
			continue
		}
		return r, true
	}
	return FaultRule{}, false
}

func (p *FaultProxy) next() http.RoundTripper {
	if p.Next != nil {
		return p.Next
	}
	return http.DefaultTransport
}

// Injected returns a copy of the fired-injection counts per backend host
// and mode.
func (p *FaultProxy) Injected() map[string]map[FaultMode]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]map[FaultMode]uint64, len(p.injected))
	for host, modes := range p.injected {
		cp := make(map[FaultMode]uint64, len(modes))
		for m, c := range modes {
			cp[m] = c
		}
		out[host] = cp
	}
	return out
}

// Requests returns how many round trips targeted the host so far.
func (p *FaultProxy) Requests(host string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.seq[host]
}

// sleepCtx waits for d or the context.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
