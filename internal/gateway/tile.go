package gateway

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sync"

	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
	"wavelethpc/internal/proto"
	"wavelethpc/internal/wavelet"
)

// Distributed tile decomposition: the gateway-level realization of the
// paper's Paragon stripe/halo scheme. An oversized image is split into
// row stripes, each stripe (plus a filter-length halo) is shipped to a
// backend as a one-level decompose in the exact float64 raster form, and
// the returned sub-pyramids are stitched into the global level — then
// the stitched LL recurses for the next level. The result is
// Float64bits-identical to the single-node transform because
//
//   - horizontal filtering touches each row independently and every
//     stripe carries full-width rows, and
//   - the vertical filter is causal (output row j reads input rows
//     2j .. 2j+f-1), so output rows [r0/2, r0/2+H/2) need exactly input
//     rows [r0, r0+H+f-2); the halo supplies them, wrapping modulo the
//     level height so stripe row m IS global row (r0+m) mod R — the
//     global periodic extension, reproduced exactly even when the halo
//     wraps all the way around a small level.
//
// Sub-requests pin tol=0 (the bit-identical convolution tier) and assume
// backends run the default periodic extension; RouteKey.Shard spreads
// the same-shape stripes across the fleet instead of letting rendezvous
// affinity pile them onto one backend.

// shouldTile reports whether the request takes the distributed tiling
// path: tiling configured, image tall enough, and every parameter the
// coordinator must understand — bank, levels, shape, tol=0 — cleanly
// parsed and decomposable.
func (g *Gateway) shouldTile(info *proto.RouteInfo) bool {
	if g.cfg.TileRows <= 0 || !info.OK || !info.ShapeOK {
		return false
	}
	if info.Rows < g.cfg.TileRows {
		return false
	}
	// The coordinator drives the decomposition itself, so it cannot
	// defer to backend defaults or the lifting tier.
	if info.Bank == "" || info.Levels < 1 || info.Tol != 0 {
		return false
	}
	if _, err := filter.ByName(info.Bank); err != nil {
		return false
	}
	return wavelet.CheckDecomposable(info.Rows, info.Cols, info.Levels) == nil
}

// tiledDecompose coordinates the stripe fan-out level by level and
// renders the stitched pyramid in the requested output form. A stripe
// whose backend answers non-200 short-circuits: that response is
// forwarded as the overall result so the client sees the authoritative
// backend diagnostic.
func (g *Gateway) tiledDecompose(ctx context.Context, info *proto.RouteInfo) (*Result, error) {
	bank, err := filter.ByName(info.Bank)
	if err != nil {
		return nil, fmt.Errorf("gateway: tiling: %w", err)
	}
	cur, err := decodeTileInput(info.ImageData)
	if err != nil {
		return nil, fmt.Errorf("gateway: tiling: %w", err)
	}
	if cur.Rows != info.Rows || cur.Cols != info.Cols {
		return nil, fmt.Errorf("gateway: tiling: sniffed %dx%d but decoded %dx%d",
			info.Rows, info.Cols, cur.Rows, cur.Cols)
	}

	stripes := g.cfg.TileStripes
	if stripes <= 0 {
		stripes = len(g.backends)
	}
	p := &wavelet.Pyramid{Bank: bank, Ext: filter.Periodic, Levels: make([]wavelet.DetailBands, info.Levels)}
	attempts := 0
	for l := 0; l < info.Levels; l++ {
		level, n, err2 := g.tileOneLevel(ctx, info.Bank, bank, cur, stripes)
		if err2 != nil {
			return nil, err2
		}
		if level.errResult != nil {
			return level.errResult, nil
		}
		attempts += n
		p.Levels[info.Levels-1-l] = wavelet.DetailBands{LH: level.lh, HL: level.hl, HH: level.hh}
		cur = level.ll
	}
	p.Approx = cur

	g.metrics.TiledRequests.Add(1)
	var buf bytes.Buffer
	mw := &memResponseWriter{header: http.Header{}, body: &buf}
	if err := proto.WriteDecomposeResponse(mw, p, info.Output); err != nil {
		return nil, fmt.Errorf("gateway: tiling: encoding response: %w", err)
	}
	return &Result{
		Status:   http.StatusOK,
		Header:   mw.header,
		Body:     buf.Bytes(),
		Backend:  "tiled",
		Attempts: attempts,
	}, nil
}

// stitchedLevel is one stitched decomposition level.
type stitchedLevel struct {
	ll, lh, hl, hh *image.Image
	// errResult carries a backend's non-200 response verbatim when a
	// stripe was refused.
	errResult *Result
}

// tileOneLevel splits cur into row stripes with halos, fans them out as
// one-level pyramid sub-requests, and stitches the kept output rows.
func (g *Gateway) tileOneLevel(ctx context.Context, bankName string, bank *filter.Bank, cur *image.Image, stripes int) (*stitchedLevel, int, error) {
	rows, cols := cur.Rows, cur.Cols
	half := rows / 2
	shares := stripeShares(half, stripes)
	// Causal analysis support: output row j reads input rows 2j..2j+f-1,
	// so a stripe of H input rows needs f-2 extra rows below, rounded up
	// to even so the sub-image height stays decomposable.
	halo := bank.DecLen() - 2
	if halo < 0 {
		halo = 0
	}
	halo = (halo + 1) &^ 1

	type stripeOut struct {
		res      *Result
		err      error
		attempts int
	}
	outs := make([]stripeOut, len(shares))
	var wg sync.WaitGroup
	r0 := 0
	for i, share := range shares {
		h := 2 * share
		sub := extractStripe(cur, r0, h+halo)
		q := url.Values{}
		q.Set("bank", bankName)
		q.Set("levels", "1")
		q.Set("output", proto.OutputPyramid)
		var body bytes.Buffer
		if err := proto.EncodeRaster(&body, sub); err != nil {
			return nil, 0, fmt.Errorf("gateway: tiling: encoding stripe: %w", err)
		}
		req := &Request{
			Method:      http.MethodPost,
			Path:        "/v1/decompose",
			Query:       q,
			Body:        body.Bytes(),
			ContentType: proto.ContentTypeRaster,
			Key: RouteKey{
				Rows: sub.Rows, Cols: sub.Cols,
				Bank: bankName, Levels: 1,
				Shard: i + 1,
			},
		}
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			res, err := g.Do(ctx, req)
			outs[slot] = stripeOut{res: res, err: err}
			if res != nil {
				outs[slot].attempts = res.Attempts
			}
		}(i)
		g.metrics.TileStripes.Add(1)
		r0 += h
	}
	wg.Wait()

	level := &stitchedLevel{
		ll: image.New(half, cols/2),
		lh: image.New(half, cols/2),
		hl: image.New(half, cols/2),
		hh: image.New(half, cols/2),
	}
	attempts := 0
	r0 = 0
	for i, share := range shares {
		o := outs[i]
		if o.err != nil {
			return nil, 0, o.err
		}
		attempts += o.attempts
		if o.res.Status != http.StatusOK {
			level.errResult = o.res
			return level, attempts, nil
		}
		sp, err := proto.DecodePyramid(bytes.NewReader(o.res.Body))
		if err != nil {
			return nil, 0, fmt.Errorf("gateway: tiling: stripe %d from %s: %w", i, o.res.Backend, err)
		}
		if sp.Depth() != 1 || sp.Approx.Rows < share || sp.Approx.Cols != cols/2 {
			return nil, 0, fmt.Errorf("gateway: tiling: stripe %d from %s: unexpected %dx%d depth-%d pyramid",
				i, o.res.Backend, sp.Approx.Rows, sp.Approx.Cols, sp.Depth())
		}
		// Keep output rows [0, share): the halo rows beyond them belong
		// to the next stripe (or wrapped around) and are discarded.
		placeRows(level.ll, sp.Approx, r0, share)
		placeRows(level.lh, sp.Levels[0].LH, r0, share)
		placeRows(level.hl, sp.Levels[0].HL, r0, share)
		placeRows(level.hh, sp.Levels[0].HH, r0, share)
		r0 += share
	}
	return level, attempts, nil
}

// stripeShares distributes half output rows over at most stripes
// stripes, each getting at least one (stripes is capped at half).
func stripeShares(half, stripes int) []int {
	if stripes > half {
		stripes = half
	}
	if stripes < 1 {
		stripes = 1
	}
	base, rem := half/stripes, half%stripes
	shares := make([]int, stripes)
	for i := range shares {
		shares[i] = base
		if i < rem {
			shares[i]++
		}
	}
	return shares
}

// extractStripe copies h full-width rows starting at r0, wrapping row
// indices modulo the level height — the wrap IS the periodic extension
// the single-node transform applies at the image boundary.
func extractStripe(im *image.Image, r0, h int) *image.Image {
	out := image.New(h, im.Cols)
	for m := 0; m < h; m++ {
		copy(out.Row(m), im.Row((r0+m)%im.Rows))
	}
	return out
}

// placeRows copies src rows [0, n) into dst rows [r0, r0+n).
func placeRows(dst, src *image.Image, r0, n int) {
	for m := 0; m < n; m++ {
		copy(dst.Row(r0+m), src.Row(m))
	}
}

// decodeTileInput decodes the raw image payload of a tiling request in
// either wire form.
func decodeTileInput(data []byte) (*image.Image, error) {
	if _, _, ok := proto.SniffRasterShape(data); ok {
		return proto.DecodeRaster(bytes.NewReader(data))
	}
	return image.ReadPGM(bytes.NewReader(data))
}

// memResponseWriter adapts proto's renderer onto an in-memory Result.
type memResponseWriter struct {
	header http.Header
	body   *bytes.Buffer
	status int
}

func (m *memResponseWriter) Header() http.Header { return m.header }

func (m *memResponseWriter) Write(p []byte) (int, error) { return m.body.Write(p) }

func (m *memResponseWriter) WriteHeader(status int) { m.status = status }
