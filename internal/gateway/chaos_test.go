package gateway

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"wavelethpc/internal/image"
	"wavelethpc/internal/serve"
)

// The chaos suite drives the gateway against real serve backends with a
// seeded in-process fault proxy between them. Everything that decides an
// injection is keyed on per-backend request sequence numbers (never wall
// time), probes run only when a test calls ProbeOnce, and backoff sleeps
// are stubbed — so a pinned seed replays a pinned schedule and the
// resilience claims become assertions instead of probabilities:
//
//   - while any backend is healthy, zero client requests fail;
//   - when none is, every request fails fast with *NoBackendsError.

// startFleet launches n real decomposition services behind httptest
// listeners and returns them (the fleet outlives each gateway under test;
// ephemeral ports feed the routing hash, so replay tests reuse one fleet).
func startFleet(t *testing.T, n int) []*httptest.Server {
	t.Helper()
	fleet := make([]*httptest.Server, n)
	for i := range fleet {
		srv, err := serve.New(serve.Config{QueueDepth: 64, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(func() {
			hs.Close()
			srv.Shutdown(context.Background())
		})
		fleet[i] = hs
	}
	return fleet
}

func fleetURLs(fleet []*httptest.Server) []string {
	urls := make([]string, len(fleet))
	for i, s := range fleet {
		urls[i] = s.URL
	}
	return urls
}

func hostOf(srv *httptest.Server) string {
	return strings.TrimPrefix(srv.URL, "http://")
}

// chaosRequest is the one decomposition job every chaos scenario repeats:
// byte-identical input must yield byte-identical output no matter which
// backend serves it, which turns "the retry was transparent" into an
// exact equality check.
func chaosRequest(t *testing.T, key RouteKey) *Request {
	t.Helper()
	var buf bytes.Buffer
	if err := image.WritePGM(&buf, image.Landsat(32, 32, 7)); err != nil {
		t.Fatal(err)
	}
	return &Request{
		Method: http.MethodPost,
		Path:   "/v1/decompose",
		Query:  map[string][]string{"filter": {"db8"}, "levels": {"2"}},
		Body:   buf.Bytes(),
		Key:    key,
	}
}

// chaosKey spreads requests across the fleet while keeping the payload
// identical: the routing key is affinity metadata, not request content.
func chaosKey(i int) RouteKey {
	return RouteKey{Rows: 32, Cols: 32, Bank: "db8", Levels: i + 1}
}

// TestChaosZeroErrorsWhileAnyBackendHealthy: latency spikes, 5xx bursts,
// and connection resets land on two of three backends on a pinned
// schedule; the third stays clean. Every client request must succeed with
// the exact bytes a calm fleet would have produced.
func TestChaosZeroErrorsWhileAnyBackendHealthy(t *testing.T) {
	fleet := startFleet(t, 3)
	proxy := &FaultProxy{
		Seed: 1002,
		Rules: []FaultRule{
			{Backend: hostOf(fleet[1]), From: 2, Prob: 0.4, Mode: FaultLatency, Latency: 2 * time.Millisecond},
			{Backend: hostOf(fleet[1]), From: 6, To: 30, Prob: 0.5, Mode: Fault5xx},
			{Backend: hostOf(fleet[2]), From: 0, To: 12, Mode: Fault5xx},
			{Backend: hostOf(fleet[2]), From: 12, Prob: 0.6, Mode: FaultReset},
		},
	}
	var sleeps []time.Duration
	g := newTestGateway(t, Config{
		Backends:  fleetURLs(fleet),
		Seed:      1002,
		Transport: proxy,
		Sleep:     noSleep(&sleeps),
	})
	var reference []byte
	for i := 0; i < 60; i++ {
		res, err := g.Do(context.Background(), chaosRequest(t, chaosKey(i%8)))
		if err != nil {
			t.Fatalf("request %d failed with a healthy backend in the fleet: %v", i, err)
		}
		if res.Status != http.StatusOK {
			t.Fatalf("request %d: status %d from %s (attempts %d)", i, res.Status, res.Backend, res.Attempts)
		}
		if reference == nil {
			reference = res.Body
		} else if !bytes.Equal(res.Body, reference) {
			t.Fatalf("request %d: response from %s differs from the reference (%d vs %d bytes)",
				i, res.Backend, len(res.Body), len(reference))
		}
	}
	inj := proxy.Injected()
	if len(inj) == 0 {
		t.Fatal("the chaos schedule never fired; the test proved nothing")
	}
	if proxy.Requests(hostOf(fleet[0])) == 0 {
		t.Error("the clean backend never served; routing is broken")
	}
}

// TestChaosBackendKilledMidRun: one backend stops answering entirely
// (accepts connections, never responds) after its fifth request. The
// deadline budget caps what each attempt can burn, retries reroute, the
// breaker quarantines the corpse — and the client sees zero failures.
func TestChaosBackendKilledMidRun(t *testing.T) {
	fleet := startFleet(t, 3)
	proxy := &FaultProxy{
		Seed: 7,
		Rules: []FaultRule{
			{Backend: hostOf(fleet[1]), From: 5, Mode: FaultBlackhole},
		},
	}
	var sleeps []time.Duration
	g := newTestGateway(t, Config{
		Backends:        fleetURLs(fleet),
		Seed:            7,
		Transport:       proxy,
		Sleep:           noSleep(&sleeps),
		AttemptFloor:    50 * time.Millisecond,
		BreakerFailures: 3,
		BreakerCooldown: time.Hour, // dead stays dead for this test
	})
	// The fleet listens on ephemeral ports and ports feed the routing
	// hash, so which keys rank the doomed backend first is a per-run
	// lottery. Pin the traffic mix instead: half the requests carry a key
	// that provably routes to the backend being killed, half a key that
	// routes elsewhere.
	keyDead := keyRankedFirst(t, g, fleet[1].URL)
	keyLive := keyRankedFirst(t, g, fleet[0].URL)
	for i := 0; i < 40; i++ {
		key := keyDead
		if i%2 == 1 {
			key = keyLive
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		res, err := g.Do(ctx, chaosRequest(t, key))
		cancel()
		if err != nil {
			t.Fatalf("request %d failed after backend kill: %v", i, err)
		}
		if res.Status != http.StatusOK {
			t.Fatalf("request %d: status %d (attempts %d)", i, res.Status, res.Attempts)
		}
	}
	if got := g.BreakerStates()[fleet[1].URL]; got != BreakerOpen {
		t.Errorf("killed backend's breaker = %v, want open", got)
	}
	// Once the breaker opened, routing must stop feeding the corpse:
	// blackholed attempts are bounded by the failures it took to trip.
	if inj := proxy.Injected()[hostOf(fleet[1])][FaultBlackhole]; inj > 6 {
		t.Errorf("%d attempts burned on the dead backend after the breaker should have opened", inj)
	}
}

// TestChaosAllBackendsDownFailsFastTyped: every backend resets every
// connection. Every request must fail with *NoBackendsError, and once the
// breakers open the failure is instantaneous (no attempts at all).
func TestChaosAllBackendsDownFailsFastTyped(t *testing.T) {
	fleet := startFleet(t, 3)
	proxy := &FaultProxy{
		Seed:  11,
		Rules: []FaultRule{{Mode: FaultReset}},
	}
	var sleeps []time.Duration
	g := newTestGateway(t, Config{
		Backends:        fleetURLs(fleet),
		Seed:            11,
		Transport:       proxy,
		Sleep:           noSleep(&sleeps),
		BreakerFailures: 2,
		BreakerCooldown: time.Hour,
	})
	var lastTried int
	for i := 0; i < 20; i++ {
		_, err := g.Do(context.Background(), chaosRequest(t, chaosKey(i%8)))
		var nb *NoBackendsError
		if !errors.As(err, &nb) {
			t.Fatalf("request %d: err = %v (%T), want *NoBackendsError", i, err, err)
		}
		if nb.Configured != 3 {
			t.Fatalf("request %d: Configured = %d, want 3", i, nb.Configured)
		}
		lastTried = nb.Tried
	}
	if lastTried != 0 {
		t.Errorf("after every breaker opened, Tried = %d, want 0 (fail fast, no attempts)", lastTried)
	}
	if got := g.Metrics().NoBackends.Value(); got != 20 {
		t.Errorf("NoBackends counter = %d, want 20", got)
	}
	for name, st := range g.BreakerStates() {
		if st != BreakerOpen {
			t.Errorf("breaker for %s = %v, want open", name, st)
		}
	}
}

// TestChaosProbeRecovery: a backend 5xxes long enough to open its
// breaker, then heals. An active probe round must short-circuit the
// cooldown and traffic must return to it without any client failure.
func TestChaosProbeRecovery(t *testing.T) {
	fleet := startFleet(t, 2)
	proxy := &FaultProxy{
		Seed: 5,
		Rules: []FaultRule{
			// Exactly the two decompose attempts that open the breaker
			// fall in the window; the probe that follows (n=2) sees a
			// genuinely recovered backend.
			{Backend: hostOf(fleet[1]), From: 0, To: 2, Mode: Fault5xx},
		},
	}
	var sleeps []time.Duration
	clk := newFakeClock()
	g := newTestGateway(t, Config{
		Backends:        fleetURLs(fleet),
		Seed:            5,
		Transport:       proxy,
		Sleep:           noSleep(&sleeps),
		Clock:           clk.now,
		BreakerFailures: 2,
		BreakerCooldown: time.Hour, // only a probe can resurrect it
	})
	key := keyRankedFirst(t, g, fleet[1].URL)
	// Two requests: each retries off the 5xx backend and succeeds on the
	// other; the repeated 5xx opens backend 1's breaker.
	for i := 0; i < 2; i++ {
		res, err := g.Do(context.Background(), chaosRequest(t, key))
		if err != nil {
			t.Fatalf("request %d during the burst: %v", i, err)
		}
		if res.Status != http.StatusOK {
			t.Fatalf("request %d during the burst: status %d", i, res.Status)
		}
	}
	if got := g.BreakerStates()[fleet[1].URL]; got != BreakerOpen {
		t.Fatalf("burst did not open the breaker (state %v)", got)
	}
	// The fault window is over; probes see a healthy node.
	g.ProbeOnce(context.Background())
	if got := g.BreakerStates()[fleet[1].URL]; got != BreakerHalfOpen {
		t.Fatalf("probe success did not half-open the breaker (state %v)", got)
	}
	res, err := g.Do(context.Background(), chaosRequest(t, key))
	if err != nil {
		t.Fatalf("trial request: %v", err)
	}
	if res.Status != http.StatusOK {
		t.Fatalf("trial request: status %d", res.Status)
	}
	if res.Backend != fleet[1].URL {
		t.Fatalf("trial routed to %s, want the recovered %s", res.Backend, fleet[1].URL)
	}
	if got := g.BreakerStates()[fleet[1].URL]; got != BreakerClosed {
		t.Errorf("trial success did not close the breaker (state %v)", got)
	}
}

// outcomeTuple is the replay-comparable record of one chaos request.
type outcomeTuple struct {
	Backend  string
	Attempts int
	Status   int
	Err      string
}

// TestChaosPinnedSeedReplays: the same seed against the same fleet must
// inject the same faults and settle every request identically — the
// property that makes a chaos failure debuggable instead of a shrug.
func TestChaosPinnedSeedReplays(t *testing.T) {
	fleet := startFleet(t, 3)
	run := func() ([]outcomeTuple, map[string]map[FaultMode]uint64) {
		proxy := &FaultProxy{
			Seed: 77,
			Rules: []FaultRule{
				{Backend: hostOf(fleet[0]), From: 3, Prob: 0.5, Mode: Fault5xx},
				{Backend: hostOf(fleet[1]), From: 1, Prob: 0.3, Mode: FaultReset},
				{Backend: hostOf(fleet[2]), From: 2, Prob: 0.4, Mode: FaultLatency, Latency: time.Millisecond},
			},
		}
		var sleeps []time.Duration
		clk := newFakeClock()
		g := newTestGateway(t, Config{
			Backends:  fleetURLs(fleet),
			Seed:      77,
			Transport: proxy,
			Sleep:     noSleep(&sleeps),
			Clock:     clk.now, // breaker windows must not depend on wall time
		})
		var outcomes []outcomeTuple
		for i := 0; i < 30; i++ {
			res, err := g.Do(context.Background(), chaosRequest(t, chaosKey(i%6)))
			o := outcomeTuple{}
			if err != nil {
				o.Err = err.Error()
			} else {
				o.Backend, o.Attempts, o.Status = res.Backend, res.Attempts, res.Status
			}
			outcomes = append(outcomes, o)
		}
		return outcomes, proxy.Injected()
	}
	out1, inj1 := run()
	out2, inj2 := run()
	if !reflect.DeepEqual(inj1, inj2) {
		t.Errorf("injection tallies diverge across replays:\nrun1: %v\nrun2: %v", inj1, inj2)
	}
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Errorf("request %d settled differently across replays:\nrun1: %+v\nrun2: %+v",
				i, out1[i], out2[i])
		}
	}
	if len(inj1) == 0 {
		t.Fatal("no faults fired; the replay proved nothing")
	}
}
