// Package gateway is the resilient multi-backend shard router in front
// of N waveserved decomposition services: the piece that turns the
// single-process serve layer into a survivable fleet. It routes each
// request by a shape+bank-aware rendezvous hash so every backend's
// pooled Decomposers stay hot for the traffic classes they already
// serve, and wraps the fan-out in the full resilience stack:
//
//   - per-backend health: active /readyz probes plus passive error-rate
//     tracking, feeding a three-state circuit breaker
//     (closed -> open -> half-open);
//   - bounded retries with exponential backoff and seeded full jitter
//     (a SplitMix64 counter stream in internal/fault's discipline —
//     never math/rand, which wavelint forbids here);
//   - deadline-budget propagation: the client's remaining deadline is
//     split across the attempts still available, so one blackholed
//     backend can burn at most its share and the retries that follow
//     still have time to succeed;
//   - optional hedged requests for tail latency: a second attempt on the
//     next-ranked backend when the first outlives HedgeAfter, first
//     usable response wins;
//   - graceful drain: Shutdown stops admission (typed ErrDraining /
//     HTTP 503), finishes in-flight requests, then returns.
//
// When no backend can serve — every breaker open, or every attempt dead
// at the transport layer — requests fail fast with a typed
// *NoBackendsError instead of hanging. cmd/wavegate wraps the package in
// a daemon; the chaos suite drives it against a seeded in-process fault
// proxy and asserts zero client-visible errors while any backend lives.
package gateway

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wavelethpc/internal/fault"
	"wavelethpc/internal/wavelet"
)

// Config parameterizes a Gateway. Zero values select production
// defaults; invalid values are rejected by New with a wrapped
// *wavelet.UsageError.
type Config struct {
	// Backends are the base URLs of the waveserved processes fronted by
	// the gateway (e.g. "http://127.0.0.1:9001"). At least one is
	// required.
	Backends []string
	// Seed keys the retry-jitter stream and the rendezvous routing salt.
	// A pinned seed replays a pinned backoff schedule.
	Seed uint64
	// MaxRetries bounds attempts beyond the first (0 = 3; negative
	// rejected).
	MaxRetries int
	// BaseBackoff and MaxBackoff shape the exponential full-jitter
	// delay before retry r: unit() * min(MaxBackoff, BaseBackoff<<(r-1)).
	// Defaults 5ms and 250ms.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// AttemptFloor is the minimum per-attempt timeout carved from the
	// deadline budget (default 50ms).
	AttemptFloor time.Duration
	// HedgeAfter launches a hedged second attempt on the next-ranked
	// backend when the first has not answered within this duration.
	// 0 disables hedging.
	HedgeAfter time.Duration
	// BreakerFailures opens a backend's breaker after this many
	// consecutive failures (default 5).
	BreakerFailures int
	// BreakerErrorRate opens the breaker when the windowed failure
	// fraction reaches it with BreakerMinSamples outcomes (defaults 0.5
	// and 20 over a 2s window).
	BreakerErrorRate  float64
	BreakerMinSamples int
	BreakerWindow     time.Duration
	// BreakerCooldown is how long an open breaker refuses before
	// admitting a half-open trial (default 1s).
	BreakerCooldown time.Duration
	// ProbeInterval is the active health-check period (0 = 500ms;
	// negative disables the background prober — ProbeOnce still works).
	ProbeInterval time.Duration
	// ProbePath is probed on each backend (default /readyz, so backends
	// report saturation before hard rejection).
	ProbePath string
	// ProbeTimeout bounds one probe (default 250ms).
	ProbeTimeout time.Duration
	// CacheBytes bounds the content-addressed result cache in bytes of
	// cached response payload (0 disables caching). Identical decompose
	// requests — same image bytes, bank, levels, tol, and output, in any
	// wire form — are answered from the cache, and concurrent identical
	// requests collapse into one backend round trip (singleflight).
	CacheBytes int64
	// TileRows enables distributed tile decomposition: a decompose
	// request whose image has at least TileRows rows is split into row
	// stripes with filter-length halos, fanned out across the backends,
	// and stitched bit-identically to the single-node transform
	// (0 disables tiling). The tiling path assumes backends run the
	// default periodic extension.
	TileRows int
	// TileStripes is how many row stripes a tiled image splits into
	// (0 = one per backend; capped by the image's decimated height).
	TileStripes int
	// Transport performs the backend round trips; nil selects a pooled
	// http.Transport. The chaos suite injects its fault proxy here.
	Transport http.RoundTripper
	// Clock injects a time source for tests; nil uses the wall clock.
	Clock func() time.Time
	// Sleep injects the inter-retry wait for tests; nil sleeps for real
	// (honoring context cancellation).
	Sleep func(ctx context.Context, d time.Duration)
}

// RouteKey is the routing affinity of one request: requests sharing a
// key always rank backends identically, so a backend keeps serving the
// (shape, bank, levels) classes whose Decomposer pools it has already
// warmed.
type RouteKey struct {
	Rows, Cols int
	Bank       string
	Levels     int
	// Shard decorrelates the rendezvous ranking of otherwise identical
	// keys, so the tiling path's same-shape stripes spread across the
	// fleet instead of piling onto one backend. Zero (the default)
	// leaves the hash exactly as it was before sharding existed.
	Shard int
}

// routeSalt decorrelates routing hashes from the jitter stream.
const routeSalt = 0x2545f4914f6cdd1d

// hash folds the key into the rendezvous hash input.
func (k RouteKey) hash(seed uint64) uint64 {
	h := fault.SplitMix64(seed ^ routeSalt)
	h = fault.SplitMix64(h ^ uint64(k.Rows)*0x9e3779b97f4a7c15)
	h = fault.SplitMix64(h ^ uint64(k.Cols)*0xbf58476d1ce4e5b9)
	h = fault.SplitMix64(h ^ uint64(k.Levels)*0x94d049bb133111eb)
	for i := 0; i < len(k.Bank); i++ {
		h = fault.SplitMix64(h ^ uint64(k.Bank[i]))
	}
	if k.Shard != 0 {
		h = fault.SplitMix64(h ^ uint64(k.Shard)*0xd6e8feb86659fd93)
	}
	return h
}

// Request is one routed job. Body must be replayable (a byte slice, not
// a stream) because retries and hedges resend it.
type Request struct {
	// Method defaults to POST when a body is present, GET otherwise.
	Method string
	// Path is the backend path, e.g. "/v1/decompose".
	Path string
	// Query is forwarded verbatim.
	Query url.Values
	// Body is the request payload (may be nil).
	Body []byte
	// ContentType is forwarded as the Content-Type header when non-empty,
	// so backends can distinguish the proto wire forms (JSON, raster,
	// legacy PGM).
	ContentType string
	// Key is the routing affinity; the zero key routes by request
	// sequence number (spreading keyless traffic evenly).
	Key RouteKey
}

// Result is the backend response the gateway settled on.
type Result struct {
	// Status is the backend's HTTP status.
	Status int
	// Header is the backend's response header.
	Header http.Header
	// Body is the full response payload.
	Body []byte
	// Backend names the backend that produced the response.
	Backend string
	// Attempts is how many attempts (including hedges) the request made.
	Attempts int
}

// backend is one routed target and its health state.
type backend struct {
	name string
	base *url.URL
	hash uint64
	br   *breaker
	bm   *BackendMetrics
}

// Gateway routes requests across the configured backends. Create with
// New; it is safe for concurrent use.
type Gateway struct {
	cfg       Config
	now       func() time.Time
	sleep     sleepFunc
	transport http.RoundTripper
	backends  []*backend
	metrics   *Metrics
	jit       *jitter
	reqSeq    atomic.Uint64
	cache     *resultCache

	mu       sync.RWMutex // guards draining vs. admission
	draining bool
	wg       sync.WaitGroup

	probeStop chan struct{}
	probeDone chan struct{}
}

func badGatewayConfig(format string, args ...any) error {
	return fmt.Errorf("gateway: invalid config: %w",
		&wavelet.UsageError{Op: "gateway.New", Detail: fmt.Sprintf(format, args...)})
}

// New validates cfg, builds the backend set, and starts the active
// prober (unless ProbeInterval is negative).
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, badGatewayConfig("no backends")
	}
	if cfg.MaxRetries < 0 {
		return nil, badGatewayConfig("MaxRetries = %d, want >= 0", cfg.MaxRetries)
	}
	if cfg.HedgeAfter < 0 {
		return nil, badGatewayConfig("HedgeAfter = %v, want >= 0", cfg.HedgeAfter)
	}
	if cfg.BreakerErrorRate < 0 || cfg.BreakerErrorRate > 1 {
		return nil, badGatewayConfig("BreakerErrorRate = %g outside [0, 1]", cfg.BreakerErrorRate)
	}
	if cfg.CacheBytes < 0 {
		return nil, badGatewayConfig("CacheBytes = %d, want >= 0", cfg.CacheBytes)
	}
	if cfg.TileRows < 0 {
		return nil, badGatewayConfig("TileRows = %d, want >= 0", cfg.TileRows)
	}
	if cfg.TileStripes < 0 {
		return nil, badGatewayConfig("TileStripes = %d, want >= 0", cfg.TileStripes)
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	}
	if cfg.BaseBackoff == 0 {
		cfg.BaseBackoff = 5 * time.Millisecond
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = 250 * time.Millisecond
	}
	if cfg.AttemptFloor == 0 {
		cfg.AttemptFloor = 50 * time.Millisecond
	}
	if cfg.BreakerFailures == 0 {
		cfg.BreakerFailures = 5
	}
	if cfg.BreakerErrorRate == 0 {
		cfg.BreakerErrorRate = 0.5
	}
	if cfg.BreakerMinSamples == 0 {
		cfg.BreakerMinSamples = 20
	}
	if cfg.BreakerWindow == 0 {
		cfg.BreakerWindow = 2 * time.Second
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = time.Second
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.ProbePath == "" {
		cfg.ProbePath = "/readyz"
	}
	if cfg.ProbeTimeout == 0 {
		cfg.ProbeTimeout = 250 * time.Millisecond
	}
	g := &Gateway{
		cfg:       cfg,
		now:       cfg.Clock,
		sleep:     cfg.Sleep,
		transport: cfg.Transport,
		jit:       &jitter{seed: cfg.Seed},
	}
	if g.now == nil {
		g.now = time.Now
	}
	if g.sleep == nil {
		g.sleep = realSleep
	}
	if g.transport == nil {
		g.transport = &http.Transport{MaxIdleConnsPerHost: 64}
	}
	names := make([]string, len(cfg.Backends))
	seen := map[string]bool{}
	for i, raw := range cfg.Backends {
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, badGatewayConfig("backend %q is not an absolute URL", raw)
		}
		if seen[u.String()] {
			return nil, badGatewayConfig("duplicate backend %q", raw)
		}
		seen[u.String()] = true
		names[i] = u.String()
	}
	g.metrics = newGatewayMetrics(names)
	if cfg.CacheBytes > 0 {
		g.cache = newResultCache(cfg.CacheBytes, g.metrics)
	}
	bcfg := breakerConfig{
		failures:   cfg.BreakerFailures,
		errorRate:  cfg.BreakerErrorRate,
		minSamples: cfg.BreakerMinSamples,
		window:     cfg.BreakerWindow,
		cooldown:   cfg.BreakerCooldown,
	}
	for _, name := range names {
		u, _ := url.Parse(name)
		bm := g.metrics.Backend(name)
		b := &backend{
			name: name,
			base: u,
			hash: hashString(name),
			bm:   bm,
		}
		b.br = newBreaker(bcfg, g.now, func(from, to BreakerState) {
			switch to {
			case BreakerOpen:
				bm.BreakerOpened.Add(1)
			case BreakerHalfOpen:
				bm.BreakerHalfOpened.Add(1)
			case BreakerClosed:
				bm.BreakerClosed.Add(1)
			}
		})
		g.backends = append(g.backends, b)
	}
	if cfg.ProbeInterval > 0 {
		g.probeStop = make(chan struct{})
		g.probeDone = make(chan struct{})
		go g.probeLoop()
	}
	return g, nil
}

// hashString folds a backend name into a rendezvous hash input.
func hashString(s string) uint64 {
	h := fault.SplitMix64(uint64(len(s)) ^ 0xff51afd7ed558ccd)
	for i := 0; i < len(s); i++ {
		h = fault.SplitMix64(h ^ uint64(s[i]))
	}
	return h
}

// Metrics returns the gateway's registry (live).
func (g *Gateway) Metrics() *Metrics { return g.metrics }

// Backends returns the normalized backend names in configuration order.
func (g *Gateway) Backends() []string {
	out := make([]string, len(g.backends))
	for i, b := range g.backends {
		out[i] = b.name
	}
	return out
}

// BreakerStates reports each backend's current breaker state, keyed by
// backend name.
func (g *Gateway) BreakerStates() map[string]BreakerState {
	out := make(map[string]BreakerState, len(g.backends))
	for _, b := range g.backends {
		out[b.name] = b.br.currentState()
	}
	return out
}

// ranked orders the backends by rendezvous score for the key: the
// highest-random-weight ordering means removing one backend only remaps
// the keys it owned, so the others' Decomposer pools stay hot.
func (g *Gateway) ranked(key uint64) []*backend {
	out := append([]*backend(nil), g.backends...)
	sort.Slice(out, func(i, j int) bool {
		si := fault.SplitMix64(key ^ out[i].hash)
		sj := fault.SplitMix64(key ^ out[j].hash)
		if si != sj {
			return si > sj
		}
		return out[i].name < out[j].name
	})
	return out
}

// pick returns the best-ranked backend whose breaker admits traffic,
// skipping those in tried. Nil when none qualifies.
func (g *Gateway) pick(key uint64, tried map[*backend]bool) *backend {
	for _, b := range g.ranked(key) {
		if tried[b] {
			continue
		}
		if b.br.allow() {
			return b
		}
	}
	return nil
}

// Do routes one request with retries, rerouting, hedging, and deadline
// budgeting. It returns the backend response (which may be a forwarded
// backend error status) or a typed gateway error: ErrDraining once
// Shutdown began, *NoBackendsError when nothing could serve, or the
// context's error.
func (g *Gateway) Do(ctx context.Context, req *Request) (*Result, error) {
	g.mu.RLock()
	if g.draining {
		g.mu.RUnlock()
		g.metrics.Drained.Add(1)
		return nil, ErrDraining
	}
	g.wg.Add(1)
	g.mu.RUnlock()
	defer g.wg.Done()
	g.metrics.Admitted.Add(1)
	start := g.now()
	res, err := g.route(ctx, req)
	g.metrics.Latency.Observe(g.now().Sub(start).Seconds())
	if err == nil {
		g.metrics.Completed.Add(1)
	}
	return res, err
}

// route is the retry loop behind Do.
func (g *Gateway) route(ctx context.Context, req *Request) (*Result, error) {
	bud := newBudget(ctx, g.now)
	key := req.Key.hash(g.cfg.Seed)
	if req.Key == (RouteKey{}) {
		key = fault.SplitMix64(g.cfg.Seed ^ g.reqSeq.Add(1))
	}
	maxAttempts := g.cfg.MaxRetries + 1
	tried := map[*backend]bool{}
	var lastErr error
	var last5xx *Result
	attempts := 0
	budgetCut := false
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b := g.pick(key, tried)
		if b == nil && len(tried) > 0 {
			// Every backend was tried and failed this request; retry
			// budget remains, so re-admit previously failed backends.
			clear(tried)
			b = g.pick(key, tried)
		}
		if b == nil {
			g.metrics.NoBackends.Add(1)
			return nil, &NoBackendsError{Configured: len(g.backends), Tried: attempts, Last: lastErr}
		}
		tried[b] = true
		if attempt > 1 {
			b.bm.Retries.Add(1)
		}
		timeout := bud.attemptTimeout(maxAttempts-attempt+1, g.cfg.AttemptFloor)
		res, err := g.attempt(ctx, b, req, key, tried, timeout)
		attempts++
		if err == nil && res.Status < 500 {
			res.Attempts = attempts
			return res, nil
		}
		if err != nil {
			lastErr = err
		} else {
			last5xx = res
		}
		if attempt == maxAttempts {
			break
		}
		sleep := backoff(attempt, g.cfg.BaseBackoff, g.cfg.MaxBackoff, g.jit.unit())
		if !bud.allows(sleep, g.cfg.AttemptFloor) {
			g.metrics.BudgetExhausted.Add(1)
			budgetCut = true
			break
		}
		g.sleep(ctx, sleep)
	}
	if last5xx != nil {
		// The fleet answered, just badly: forward the backend's own
		// error response instead of masking it.
		last5xx.Attempts = attempts
		return last5xx, nil
	}
	if budgetCut {
		return nil, &BudgetError{Attempts: attempts, Last: lastErr}
	}
	g.metrics.NoBackends.Add(1)
	return nil, &NoBackendsError{Configured: len(g.backends), Tried: attempts, Last: lastErr}
}

// attempt runs one (possibly hedged) try against b. The tried set is
// shared with the retry loop: a launched hedge marks its backend tried
// so a later retry reroutes somewhere fresh.
func (g *Gateway) attempt(ctx context.Context, b *backend, req *Request, key uint64, tried map[*backend]bool, timeout time.Duration) (*Result, error) {
	if g.cfg.HedgeAfter <= 0 {
		return g.roundTrip(ctx, b, req, timeout, false)
	}
	type out struct {
		res    *Result
		err    error
		hedged bool
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan out, 2)
	launch := func(b *backend, hedged bool) {
		go func() {
			r, e := g.roundTrip(actx, b, req, timeout, hedged)
			ch <- out{res: r, err: e, hedged: hedged}
		}()
	}
	launch(b, false)
	outstanding := 1
	timer := time.NewTimer(g.cfg.HedgeAfter)
	defer timer.Stop()
	timerC := timer.C
	var lastErr error
	var last5xx *Result
	for {
		select {
		case o := <-ch:
			outstanding--
			if o.err == nil && o.res.Status < 500 {
				if o.hedged {
					if bm := g.metrics.Backend(o.res.Backend); bm != nil {
						bm.HedgesWon.Add(1)
					}
				}
				cancel()
				return o.res, nil
			}
			if o.err != nil {
				lastErr = o.err
			} else {
				last5xx = o.res
			}
			if outstanding == 0 {
				if last5xx != nil {
					return last5xx, nil
				}
				return nil, lastErr
			}
		case <-timerC:
			timerC = nil
			if hb := g.pick(key, tried); hb != nil {
				tried[hb] = true
				launch(hb, true)
				outstanding++
			}
		}
	}
}

// roundTrip performs one HTTP attempt against b, reporting the outcome
// to the breaker and the backend's counters. An attempt canceled by the
// gateway itself (a losing hedge) reports nothing: the backend did not
// fail, the race just ended.
func (g *Gateway) roundTrip(ctx context.Context, b *backend, req *Request, timeout time.Duration, hedged bool) (*Result, error) {
	b.bm.Requests.Add(1)
	if hedged {
		b.bm.HedgesLaunched.Add(1)
	}
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	method := req.Method
	if method == "" {
		if len(req.Body) > 0 {
			method = http.MethodPost
		} else {
			method = http.MethodGet
		}
	}
	u := *b.base
	u.Path = req.Path
	u.RawQuery = req.Query.Encode()
	var body io.Reader
	if req.Body != nil {
		body = bytes.NewReader(req.Body)
	}
	hreq, err := http.NewRequestWithContext(actx, method, u.String(), body)
	if err != nil {
		b.br.cancelTrial()
		return nil, fmt.Errorf("gateway: building request for %s: %w", b.name, err)
	}
	if req.ContentType != "" {
		hreq.Header.Set("Content-Type", req.ContentType)
	}
	resp, err := g.transport.RoundTrip(hreq)
	if err != nil {
		if ctx.Err() != nil && actx.Err() != context.DeadlineExceeded {
			// Canceled from above (client gone or hedge lost): not the
			// backend's fault.
			b.br.cancelTrial()
			return nil, fmt.Errorf("gateway: attempt canceled: %w", ctx.Err())
		}
		b.br.reportFailure()
		b.bm.Failures.Add(1)
		return nil, fmt.Errorf("gateway: backend %s: %w", b.name, err)
	}
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	resp.Body.Close()
	if err != nil {
		b.br.reportFailure()
		b.bm.Failures.Add(1)
		return nil, fmt.Errorf("gateway: reading %s response: %w", b.name, err)
	}
	res := &Result{Status: resp.StatusCode, Header: resp.Header, Body: payload, Backend: b.name}
	if resp.StatusCode >= 500 {
		b.br.reportFailure()
		b.bm.Failures.Add(1)
		return res, nil
	}
	b.br.reportSuccess()
	b.bm.Successes.Add(1)
	return res, nil
}

// maxResponseBytes bounds a buffered backend response (a decomposed
// 4096x4096 PGM fits comfortably).
const maxResponseBytes = 64 << 20

// ProbeOnce runs one synchronous health-check round: every backend's
// ProbePath is fetched and the result fed to its breaker. Exposed so
// operators (and the deterministic chaos suite) can drive probing
// without the background loop.
func (g *Gateway) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range g.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			g.probe(ctx, b)
		}(b)
	}
	wg.Wait()
}

func (g *Gateway) probe(ctx context.Context, b *backend) {
	actx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
	defer cancel()
	u := *b.base
	u.Path = g.cfg.ProbePath
	hreq, err := http.NewRequestWithContext(actx, http.MethodGet, u.String(), nil)
	if err != nil {
		b.bm.ProbeFailures.Add(1)
		b.br.probeFailure()
		return
	}
	resp, err := g.transport.RoundTrip(hreq)
	if err != nil {
		b.bm.ProbeFailures.Add(1)
		b.br.probeFailure()
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.bm.ProbeFailures.Add(1)
		b.br.probeFailure()
		return
	}
	b.br.probeSuccess()
}

// probeLoop runs ProbeOnce every ProbeInterval until Shutdown.
func (g *Gateway) probeLoop() {
	defer close(g.probeDone)
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-g.probeStop:
			return
		case <-t.C:
			g.ProbeOnce(context.Background())
		}
	}
}

// Draining reports whether Shutdown has begun.
func (g *Gateway) Draining() bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.draining
}

// Shutdown drains the gateway: admission stops (Do returns ErrDraining,
// the HTTP surface 503s), in-flight requests finish, the prober exits.
// It returns nil once drained, or the context's error if draining
// outlasts it (in-flight requests keep finishing regardless). Safe to
// call more than once.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.mu.Lock()
	first := !g.draining
	g.draining = true
	g.mu.Unlock()
	if first && g.probeStop != nil {
		close(g.probeStop)
	}
	if g.probeDone != nil {
		<-g.probeDone
	}
	done := make(chan struct{})
	go func() {
		g.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
