package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// maxBodyBytes mirrors the serve layer's upload bound.
const maxBodyBytes = 32 << 20

// Handler returns the gateway's HTTP surface:
//
//	POST /v1/decompose  buffered and routed by (shape, bank, levels)
//	                    affinity with retries/hedging; the winning
//	                    backend's response is forwarded verbatim plus an
//	                    X-Wavegate-Backend header.
//	GET  /v1/banks      proxied to any available backend.
//	GET  /healthz       200 "ok", 503 once draining.
//	GET  /readyz        JSON readiness: per-backend breaker states; 503
//	                    while draining or with zero routable backends.
//	GET  /metrics       Prometheus text exposition (wavegate_ namespace).
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/decompose", g.handleDecompose)
	mux.HandleFunc("/v1/banks", g.handleBanks)
	mux.HandleFunc("/healthz", g.handleHealthz)
	mux.HandleFunc("/readyz", g.handleReadyz)
	mux.HandleFunc("/metrics", g.handleMetrics)
	return mux
}

func (g *Gateway) handleDecompose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a binary PGM body", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, fmt.Sprintf("reading body: %v", err), http.StatusBadRequest)
		return
	}
	q := r.URL.Query()
	key := RouteKey{Bank: q.Get("bank"), Levels: atoiOr(q.Get("levels"), 0)}
	if key.Bank == "" {
		key.Bank = q.Get("filter")
	}
	if rows, cols, ok := sniffPGMShape(body); ok {
		key.Rows, key.Cols = rows, cols
	}
	res, err := g.Do(r.Context(), &Request{
		Method: http.MethodPost,
		Path:   "/v1/decompose",
		Query:  q,
		Body:   body,
		Key:    key,
	})
	if err != nil {
		writeGatewayError(w, err)
		return
	}
	forward(w, res)
}

func (g *Gateway) handleBanks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	res, err := g.Do(r.Context(), &Request{Method: http.MethodGet, Path: "/v1/banks"})
	if err != nil {
		writeGatewayError(w, err)
		return
	}
	forward(w, res)
}

// forward copies the backend response through, tagging the origin.
func forward(w http.ResponseWriter, res *Result) {
	if ct := res.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := res.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-Wavegate-Backend", res.Backend)
	w.Header().Set("X-Wavegate-Attempts", strconv.Itoa(res.Attempts))
	w.WriteHeader(res.Status)
	w.Write(res.Body)
}

// writeGatewayError maps routing errors onto HTTP statuses: drain and
// no-backends are 503 (with Retry-After for well-behaved clients), an
// expired client deadline is 504, anything else 502.
func writeGatewayError(w http.ResponseWriter, err error) {
	var nb *NoBackendsError
	var be *BudgetError
	switch {
	case errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.As(err, &nb):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.As(err, &be):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusBadGateway)
	}
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if g.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// readyzBody is the /readyz JSON document.
type readyzBody struct {
	Ready    bool              `json:"ready"`
	Draining bool              `json:"draining"`
	Backends map[string]string `json:"backends"`
}

func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	states := g.BreakerStates()
	body := readyzBody{Draining: g.Draining(), Backends: make(map[string]string, len(states))}
	routable := 0
	for name, st := range states {
		body.Backends[name] = st.String()
		if st != BreakerOpen {
			routable++
		}
	}
	body.Ready = !body.Draining && routable > 0
	w.Header().Set("Content-Type", "application/json")
	if !body.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(body)
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.metrics.WriteProm(w)
}

func atoiOr(s string, def int) int {
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return n
}

// sniffPGMShape reads just enough of a binary PGM (P5) header to learn
// the image shape for routing affinity — no pixel decoding, no
// allocation. Malformed headers simply lose affinity (ok = false); the
// backend will produce the real diagnostic.
func sniffPGMShape(body []byte) (rows, cols int, ok bool) {
	i := 0
	if len(body) < 2 || body[0] != 'P' || body[1] != '5' {
		return 0, 0, false
	}
	i = 2
	next := func() (int, bool) {
		for i < len(body) {
			c := body[i]
			if c == '#' {
				for i < len(body) && body[i] != '\n' {
					i++
				}
				continue
			}
			if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
				i++
				continue
			}
			break
		}
		start := i
		for i < len(body) && body[i] >= '0' && body[i] <= '9' {
			i++
		}
		if i == start || i-start > 9 {
			return 0, false
		}
		n := 0
		for _, c := range body[start:i] {
			n = n*10 + int(c-'0')
		}
		return n, true
	}
	w, okW := next()
	h, okH := next()
	if !okW || !okH || w <= 0 || h <= 0 {
		return 0, 0, false
	}
	return h, w, true
}
