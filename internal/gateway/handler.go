package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"wavelethpc/internal/proto"
)

// maxBodyBytes mirrors the serve layer's upload bound.
const maxBodyBytes = 32 << 20

// Handler returns the gateway's HTTP surface:
//
//	POST /v1/decompose  buffered and routed by (shape, bank, levels)
//	                    affinity with retries/hedging; the winning
//	                    backend's response is forwarded verbatim plus an
//	                    X-Wavegate-Backend header.
//	GET  /v1/banks      proxied to any available backend.
//	GET  /healthz       200 "ok", 503 once draining.
//	GET  /readyz        JSON readiness: per-backend breaker states; 503
//	                    while draining or with zero routable backends.
//	GET  /metrics       Prometheus text exposition (wavegate_ namespace).
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/decompose", g.handleDecompose)
	mux.HandleFunc("/v1/banks", g.handleBanks)
	mux.HandleFunc("/healthz", g.handleHealthz)
	mux.HandleFunc("/readyz", g.handleReadyz)
	mux.HandleFunc("/metrics", g.handleMetrics)
	return mux
}

func (g *Gateway) handleDecompose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		proto.WriteError(w, proto.NewError(http.StatusMethodNotAllowed, proto.CodeMethodNotAllowed,
			"POST a binary PGM body (or the v1 JSON form)"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		proto.WriteError(w, proto.NewError(http.StatusBadRequest, proto.CodeBadRequest,
			"reading body: %v", err))
		return
	}
	// The shared proto parser extracts routing affinity, the canonical
	// decompose parameters, and the raw image payload from whichever wire
	// form carried them. Parsing is best-effort: a malformed request just
	// loses affinity, caching, and tiling, and is forwarded verbatim so
	// the backend produces the authoritative diagnostic.
	info := proto.ParseRouteInfo(r.URL.Query(), r.Header.Get("Content-Type"), body)
	key := RouteKey{Bank: info.Bank, Levels: info.Levels}
	if info.ShapeOK {
		key.Rows, key.Cols = info.Rows, info.Cols
	}
	res, err := g.serveDecompose(r.Context(), &info, &Request{
		Method:      http.MethodPost,
		Path:        "/v1/decompose",
		Query:       r.URL.Query(),
		Body:        body,
		ContentType: r.Header.Get("Content-Type"),
		Key:         key,
	})
	if err != nil {
		writeGatewayError(w, err)
		return
	}
	forward(w, res)
}

// serveDecompose is the decompose routing pipeline behind the HTTP
// surface: the content-addressed result cache (when configured) wraps
// the distributed tiling path (when configured and the image is large
// enough), which wraps plain single-backend routing.
func (g *Gateway) serveDecompose(ctx context.Context, info *proto.RouteInfo, req *Request) (*Result, error) {
	return g.cachedDo(ctx, info, func() (*Result, error) {
		if g.shouldTile(info) {
			return g.tiledDecompose(ctx, info)
		}
		return g.Do(ctx, req)
	})
}

func (g *Gateway) handleBanks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	res, err := g.Do(r.Context(), &Request{Method: http.MethodGet, Path: "/v1/banks"})
	if err != nil {
		writeGatewayError(w, err)
		return
	}
	forward(w, res)
}

// forward copies the backend response through, tagging the origin.
func forward(w http.ResponseWriter, res *Result) {
	if ct := res.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := res.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	if cv := res.Header.Get("X-Wavegate-Cache"); cv != "" {
		w.Header().Set("X-Wavegate-Cache", cv)
	}
	w.Header().Set("X-Wavegate-Backend", res.Backend)
	w.Header().Set("X-Wavegate-Attempts", strconv.Itoa(res.Attempts))
	w.WriteHeader(res.Status)
	w.Write(res.Body)
}

// writeGatewayError maps routing errors onto proto error envelopes:
// drain and no-backends are 503 (with Retry-After for well-behaved
// clients), an expired client deadline is 504, anything else 502 — each
// with its stable machine-readable code.
func writeGatewayError(w http.ResponseWriter, err error) {
	proto.WriteError(w, gatewayErrorEnvelope(err))
}

func gatewayErrorEnvelope(err error) *proto.Error {
	var nb *NoBackendsError
	var be *BudgetError
	switch {
	case errors.Is(err, ErrDraining):
		return proto.NewError(http.StatusServiceUnavailable, proto.CodeDraining, "%v", err)
	case errors.As(err, &nb):
		e := proto.NewError(http.StatusServiceUnavailable, proto.CodeNoBackends, "%v", err)
		e.RetryAfterSec = 1
		return e
	case errors.As(err, &be):
		return proto.NewError(http.StatusGatewayTimeout, proto.CodeBudget, "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		return proto.NewError(http.StatusGatewayTimeout, proto.CodeDeadline, "%v", err)
	case errors.Is(err, context.Canceled):
		return proto.NewError(http.StatusServiceUnavailable, proto.CodeCanceled, "%v", err)
	default:
		return proto.NewError(http.StatusBadGateway, proto.CodeBadGateway, "%v", err)
	}
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if g.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// readyzBody is the /readyz JSON document.
type readyzBody struct {
	Ready    bool              `json:"ready"`
	Draining bool              `json:"draining"`
	Backends map[string]string `json:"backends"`
}

func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	states := g.BreakerStates()
	body := readyzBody{Draining: g.Draining(), Backends: make(map[string]string, len(states))}
	routable := 0
	for name, st := range states {
		body.Backends[name] = st.String()
		if st != BreakerOpen {
			routable++
		}
	}
	body.Ready = !body.Draining && routable > 0
	w.Header().Set("Content-Type", "application/json")
	if !body.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(body)
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.metrics.WriteProm(w)
}
