package gateway

import (
	"errors"
	"fmt"
)

// NoBackendsError is the typed fast-fail returned when no backend can
// take the request: either every configured backend's circuit breaker is
// refusing traffic, or every routing attempt died at the transport layer
// without an HTTP response. Clients see it immediately instead of a
// deadline burn; the HTTP layer renders it as 503.
type NoBackendsError struct {
	// Configured is the number of backends the gateway fronts.
	Configured int
	// Tried is how many attempts this request made before giving up
	// (0 when every breaker refused up front).
	Tried int
	// Last is the final transport error, if any attempt was made.
	Last error
}

// Error implements error.
func (e *NoBackendsError) Error() string {
	if e.Last == nil {
		return fmt.Sprintf("gateway: no healthy backends (%d configured, all circuit-broken)", e.Configured)
	}
	return fmt.Sprintf("gateway: no healthy backends (%d configured, %d attempts failed, last: %v)",
		e.Configured, e.Tried, e.Last)
}

// Unwrap exposes the last transport error for errors.Is/As chains.
func (e *NoBackendsError) Unwrap() error { return e.Last }

// ErrDraining is returned once Shutdown has begun: the gateway stops
// admitting work while in-flight requests finish (graceful drain).
var ErrDraining = errors.New("gateway: draining")

// BudgetError reports a retry loop cut short by the deadline budget: the
// remaining client deadline could not fund another backoff + attempt, so
// the gateway returned the last failure instead of blowing the deadline.
type BudgetError struct {
	// Attempts is how many attempts ran before the budget ran out.
	Attempts int
	// Last is the failure of the final attempt.
	Last error
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("gateway: deadline budget exhausted after %d attempts: %v", e.Attempts, e.Last)
}

// Unwrap exposes the last attempt's error.
func (e *BudgetError) Unwrap() error { return e.Last }
