package gateway

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
	"wavelethpc/internal/proto"
	"wavelethpc/internal/serve"
	"wavelethpc/internal/wavelet"
)

// newServeFleet starts n real in-process waveserved backends and
// returns their URLs.
func newServeFleet(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		s, err := serve.New(serve.Config{QueueDepth: 64, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			srv.Close()
			s.Shutdown(context.Background())
		})
		urls[i] = srv.URL
	}
	return urls
}

// postDecompose drives the gateway's HTTP surface.
func postDecompose(t *testing.T, g *Gateway, query, contentType string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/decompose"+query, bytes.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, req)
	return rec
}

func encodePGM(t *testing.T, im *image.Image) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := image.WritePGM(&buf, im); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func requireBitsEqual(t *testing.T, label string, got, want *wavelet.Pyramid) {
	t.Helper()
	if got.Depth() != want.Depth() {
		t.Fatalf("%s: depth %d, want %d", label, got.Depth(), want.Depth())
	}
	if !image.EqualBits(got.Approx, want.Approx) {
		t.Fatalf("%s: approx band not bit-identical", label)
	}
	for i := range want.Levels {
		if !image.EqualBits(got.Levels[i].LH, want.Levels[i].LH) ||
			!image.EqualBits(got.Levels[i].HL, want.Levels[i].HL) ||
			!image.EqualBits(got.Levels[i].HH, want.Levels[i].HH) {
			t.Fatalf("%s: detail level %d not bit-identical", label, i)
		}
	}
}

// TestTiledBitIdentityEveryBank is the tentpole property: for every
// catalog bank under periodic extension, across odd and even stripe
// counts, the stitched distributed-tile pyramid is Float64bits-identical
// to the single-node transform.
func TestTiledBitIdentityEveryBank(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet property test")
	}
	urls := newServeFleet(t, 3)
	pgm := encodePGM(t, image.Landsat(32, 32, 9))
	// The reference transform must see exactly what the gateway decodes:
	// the PGM-quantized image, not the continuous Landsat floats.
	im, err := image.ReadPGM(bytes.NewReader(pgm))
	if err != nil {
		t.Fatal(err)
	}
	const levels = 2
	for _, name := range filter.Names() {
		bank, err := filter.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := wavelet.Decompose(im, bank, filter.Periodic, levels)
		if err != nil {
			t.Fatal(err)
		}
		for _, stripes := range []int{1, 2, 3, 5} {
			g := newTestGateway(t, Config{
				Backends:    urls,
				Seed:        42,
				TileRows:    1, // always tile
				TileStripes: stripes,
			})
			rec := postDecompose(t, g,
				"?bank="+name+"&levels=2&output=pyramid", "", pgm)
			if rec.Code != http.StatusOK {
				t.Fatalf("%s S=%d: status %d: %s", name, stripes, rec.Code, rec.Body.String())
			}
			if got := rec.Header().Get("X-Wavegate-Backend"); got != "tiled" {
				t.Fatalf("%s S=%d: backend %q, want tiled", name, stripes, got)
			}
			got, err := proto.DecodePyramid(rec.Body)
			if err != nil {
				t.Fatalf("%s S=%d: %v", name, stripes, err)
			}
			requireBitsEqual(t, name, got, want)
			g.Shutdown(context.Background())
		}
	}
}

// TestTiledRasterInputAndOddShapes covers the raster wire form as
// tiling input plus non-square and deeper shapes.
func TestTiledRasterInputAndOddShapes(t *testing.T) {
	urls := newServeFleet(t, 2)
	bank, err := filter.ByName("bior4.4")
	if err != nil {
		t.Fatal(err)
	}
	for _, shape := range []struct{ rows, cols, levels int }{
		{64, 16, 3},
		{16, 64, 1},
		{24, 40, 2},
	} {
		im := image.Landsat(shape.rows, shape.cols, uint64(shape.rows*shape.cols))
		var raster bytes.Buffer
		if err := proto.EncodeRaster(&raster, im); err != nil {
			t.Fatal(err)
		}
		want, err := wavelet.Decompose(im, bank, filter.Periodic, shape.levels)
		if err != nil {
			t.Fatal(err)
		}
		g := newTestGateway(t, Config{Backends: urls, Seed: 7, TileRows: 1, TileStripes: 3})
		rec := postDecompose(t, g,
			"?bank=bior4.4&levels="+strconv.Itoa(shape.levels)+"&output=pyramid",
			proto.ContentTypeRaster, raster.Bytes())
		if rec.Code != http.StatusOK {
			t.Fatalf("%dx%d L%d: status %d: %s", shape.rows, shape.cols, shape.levels, rec.Code, rec.Body.String())
		}
		got, err := proto.DecodePyramid(rec.Body)
		if err != nil {
			t.Fatal(err)
		}
		requireBitsEqual(t, "raster", got, want)
		g.Shutdown(context.Background())
	}
}

// TestTiledRoundtripOutput checks the tiling path renders output forms
// other than pyramid: the stitched reconstruction must reproduce the
// input PGM byte for byte, like the single-node roundtrip.
func TestTiledRoundtripOutput(t *testing.T) {
	urls := newServeFleet(t, 2)
	im := image.Landsat(32, 32, 5)
	pgm := encodePGM(t, im)
	g := newTestGateway(t, Config{Backends: urls, Seed: 1, TileRows: 1, TileStripes: 2})
	rec := postDecompose(t, g, "?bank=db8&levels=2&output=roundtrip", "", pgm)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if !bytes.Equal(rec.Body.Bytes(), pgm) {
		t.Fatal("tiled roundtrip did not reproduce the input PGM")
	}
}

// TestTilingFallsBackToForwarding pins the cases the coordinator must
// NOT tile: requests it cannot fully understand are forwarded to a
// single backend untouched.
func TestTilingFallsBackToForwarding(t *testing.T) {
	urls := newServeFleet(t, 2)
	im := image.Landsat(16, 16, 2)
	pgm := encodePGM(t, im)
	g := newTestGateway(t, Config{Backends: urls, Seed: 3, TileRows: 8})

	cases := []struct {
		name  string
		query string
	}{
		{"no explicit bank", "?levels=2&output=pyramid"},
		{"no explicit levels", "?bank=db4&output=pyramid"},
		{"lifting tier requested", "?bank=db4&levels=2&tol=0.01&output=pyramid"},
		{"not decomposable", "?bank=db4&levels=5&output=pyramid"}, // 16x16 not 2^5-divisible
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postDecompose(t, g, tc.query, "", pgm)
			if b := rec.Header().Get("X-Wavegate-Backend"); b == "tiled" {
				t.Fatalf("request was tiled; want plain forwarding")
			}
		})
	}

	t.Run("below threshold", func(t *testing.T) {
		small := image.Landsat(4, 4, 1)
		rec := postDecompose(t, g, "?bank=db4&levels=1&output=pyramid", "", encodePGM(t, small))
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		if b := rec.Header().Get("X-Wavegate-Backend"); b == "tiled" {
			t.Fatal("4-row image was tiled below the 8-row threshold")
		}
	})
}

// TestTiledMatchesSingleBackendWire checks tiled and non-tiled gateways
// return byte-identical pyramid responses for the same request.
func TestTiledMatchesSingleBackendWire(t *testing.T) {
	urls := newServeFleet(t, 2)
	im := image.Landsat(32, 32, 13)
	pgm := encodePGM(t, im)
	const query = "?bank=sym5&levels=2&output=pyramid"

	tiled := newTestGateway(t, Config{Backends: urls, Seed: 5, TileRows: 1, TileStripes: 2})
	plain := newTestGateway(t, Config{Backends: urls, Seed: 5})
	rt := postDecompose(t, tiled, query, "", pgm)
	rp := postDecompose(t, plain, query, "", pgm)
	if rt.Code != http.StatusOK || rp.Code != http.StatusOK {
		t.Fatalf("status tiled=%d plain=%d", rt.Code, rp.Code)
	}
	if !bytes.Equal(rt.Body.Bytes(), rp.Body.Bytes()) {
		t.Fatal("tiled and single-backend pyramid responses differ on the wire")
	}
}

// TestStripeShares pins the stripe split arithmetic.
func TestStripeShares(t *testing.T) {
	cases := []struct {
		half, stripes int
		want          []int
	}{
		{8, 3, []int{3, 3, 2}},
		{8, 16, []int{1, 1, 1, 1, 1, 1, 1, 1}},
		{1, 4, []int{1}},
		{6, 1, []int{6}},
		{7, 2, []int{4, 3}},
	}
	for _, tc := range cases {
		got := stripeShares(tc.half, tc.stripes)
		if len(got) != len(tc.want) {
			t.Fatalf("stripeShares(%d, %d) = %v, want %v", tc.half, tc.stripes, got, tc.want)
		}
		sum := 0
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("stripeShares(%d, %d) = %v, want %v", tc.half, tc.stripes, got, tc.want)
			}
			sum += got[i]
		}
		if sum != tc.half {
			t.Fatalf("stripeShares(%d, %d) sums to %d", tc.half, tc.stripes, sum)
		}
	}
}

// TestExtractStripeWraps checks halo rows wrap modulo the level height —
// the periodic extension reproduced at stripe granularity.
func TestExtractStripeWraps(t *testing.T) {
	im := image.New(4, 2)
	for r := 0; r < 4; r++ {
		im.Set(r, 0, float64(r))
		im.Set(r, 1, float64(r))
	}
	s := extractStripe(im, 2, 6) // rows 2,3,0,1,2,3
	wantRows := []float64{2, 3, 0, 1, 2, 3}
	for m, want := range wantRows {
		if s.At(m, 0) != want {
			t.Fatalf("stripe row %d = %g, want %g", m, s.At(m, 0), want)
		}
	}
}
