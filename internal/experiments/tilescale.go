package experiments

import (
	"context"
	"fmt"

	"wavelethpc/internal/budget"
	"wavelethpc/internal/filter"
	"wavelethpc/internal/harness"
	"wavelethpc/internal/image"
	"wavelethpc/internal/mesh"
	"wavelethpc/internal/nx"
	"wavelethpc/internal/wavelet"
)

// tile/scale is the deterministic scale model behind the gateway's
// distributed tile decomposition (internal/gateway/tile.go): rank 0
// plays the wavegate coordinator, ranks 1..P-1 play waveserved
// backends, and the nx simulator's 16-node mesh supplies the placement
// and link-contention physics the HTTP fleet hides. The program mirrors
// the production protocol exactly — per level the coordinator extracts
// halo-overlapped row stripes, ships one to each backend, every backend
// runs a real one-level transform on its stripe, and the coordinator
// stitches the kept output rows — so the stitched pyramid is verified
// Float64bits-identical to the sequential transform on every sweep
// point, the same property the gateway's tile tests pin over HTTP.
//
// Unlike the paper's SPMD ring (wavelet/scaling), this topology is
// hub-and-spoke: all stripes leave from and all sub-pyramids converge
// on rank 0's node, so the coordinator's serialized sends/receives and
// the contention on its mesh links are the backpressure that caps
// fleet scaling — the effect the curve makes visible as backends grow
// toward the 16-node machine.

// tileScale returns the registered experiment.
func tileScale() harness.Experiment {
	return &harness.Func{
		ExpName: "tile/scale",
		Desc:    "gateway tile fan-out on the 16-node mesh: hub backpressure vs backend count",
		RunFunc: runTileScale,
	}
}

// tileScaleProcs is the default rank sweep: 1 coordinator + {1,3,7,15}
// backends, topping out at the full 16-node machine.
var tileScaleProcs = []int{2, 4, 8, 16}

// message tags of the coordinator/backend protocol.
const (
	tagTileStripe = 30 // coordinator -> backend: stripe + halo rows
	tagTileBands  = 31 // backend -> coordinator: trimmed LL|LH|HL|HH rows
)

func runTileScale(ctx context.Context, opt harness.Options) (*harness.Report, error) {
	machine, err := mesh.MachineByName(machineOr(opt, "paragon"))
	if err != nil {
		return nil, err
	}
	bank, err := filter.ByName("db8")
	if err != nil {
		return nil, err
	}
	size := harness.IntOr(opt.Size, 256)
	seed := opt.Seed
	if seed == 0 {
		seed = 42
	}
	levels := 2
	im := image.Landsat(size, size, uint64(seed))
	want, err := wavelet.Decompose(im, bank, filter.Periodic, levels)
	if err != nil {
		return nil, err
	}
	procs := opt.ProcsOr(tileScaleProcs)

	rep := &harness.Report{Experiment: "tile/scale"}
	sec := harness.Section{
		Heading: fmt.Sprintf("Gateway tile fan-out, %s, %dx%d db8 L%d", machine.Name, size, size, levels),
	}
	for _, pl := range placementsFor(machine) {
		curve := &harness.Curve{
			Name:  fmt.Sprintf("%s_tilescale_%s", machine.Name, pl.Name()),
			Title: fmt.Sprintf("%s placement", pl.Name()),
			Labels: []harness.Label{
				{Key: "machine", Value: machine.Name},
				{Key: "placement", Value: pl.Name()},
			},
			Columns: []harness.Column{
				{Name: "B", CSV: "backends", Width: 4, Kind: harness.Int},
				{Name: "elapsed(s)", CSV: "elapsed_s", Unit: "s", Width: 12, Prec: 4},
				{Name: "speedup", CSV: "speedup", Width: 9, Prec: 2, Verb: 'f'},
				{Name: "hub(s)", CSV: "hub_s", Unit: "s", Width: 10, Prec: 4},
				{Name: "msgs", CSV: "msgs", Width: 7, Kind: harness.Int},
				{Name: "contended", CSV: "contended_msgs", Width: 10, Kind: harness.Int},
				{Name: "linkwait(s)", CSV: "link_wait_s", Unit: "s", Width: 12, Prec: 4},
			},
		}
		base := 0.0
		for _, p := range procs {
			if p < 2 {
				return nil, fmt.Errorf("experiments: tile/scale needs >= 2 ranks (coordinator + backends), got %d", p)
			}
			res, err := runTileFanout(ctx, im, want, machine, pl, p, bank, levels)
			if err != nil {
				return nil, err
			}
			if base == 0 {
				base = res.sim.Elapsed
			}
			curve.Points = append(curve.Points, harness.Point{
				Values: []float64{
					float64(p - 1),
					res.sim.Elapsed,
					base / res.sim.Elapsed,
					res.hubComm,
					float64(res.sim.Msgs),
					float64(res.sim.ContendedMsgs),
					res.sim.LinkWait,
				},
				Budget: &res.sim.Budget,
			})
		}
		sec.Curves = append(sec.Curves, curve)
	}
	sec.Text = "stitched pyramids verified Float64bits-identical to the sequential transform at every point\n"
	rep.Sections = append(rep.Sections, sec)
	return rep, nil
}

// tileFanoutResult is one simulated coordinator run.
type tileFanoutResult struct {
	sim *nx.Result
	// hubComm is the coordinator's total time inside communication calls
	// — the serialization the hub-and-spoke topology pays.
	hubComm float64
}

// runTileFanout simulates one full pyramid build over the fan-out
// protocol and verifies the stitched result against want.
func runTileFanout(ctx context.Context, im *image.Image, want *wavelet.Pyramid, machine *mesh.Machine, pl mesh.Placement, p int, bank *filter.Bank, levels int) (*tileFanoutResult, error) {
	if err := wavelet.CheckDecomposable(im.Rows, im.Cols, levels); err != nil {
		return nil, err
	}
	cost := machine.Cost
	f := bank.DecLen()
	// Same halo rule as the gateway coordinator: causal support f-2,
	// rounded up to even so stripe heights stay decomposable.
	halo := f - 2
	if halo < 0 {
		halo = 0
	}
	halo = (halo + 1) &^ 1

	stitched := &wavelet.Pyramid{Bank: bank, Ext: filter.Periodic, Levels: make([]wavelet.DetailBands, levels)}

	prog := func(r *nx.Rank) {
		id := r.ID()
		backends := r.Procs() - 1
		if id != 0 {
			// --- Backend: serve one stripe per level -------------------
			for l := 0; l < levels; l++ {
				rows := im.Rows >> uint(l)
				shares := tileShares(rows/2, backends)
				if id > len(shares) {
					continue // more backends than stripes at this depth
				}
				data, _ := r.RecvFloats(0, tagTileStripe)
				h := 2*shares[id-1] + halo
				sub := imageFromFloats(h, im.Cols>>uint(l), data)
				sp, err := wavelet.Decompose(sub, bank, filter.Periodic, 1)
				if err != nil {
					panic(&wavelet.UsageError{Op: "tile/scale", Detail: err.Error()})
				}
				// One level on an HxC stripe is 2*H*C output coefficients
				// (row pass + column pass), each f MACs plus fixed
				// per-coefficient overhead — the calibrated kernel cost.
				r.Compute(float64(2*sub.Rows*sub.Cols)*(float64(f)*cost.MACTime+cost.CoefTime), budget.Useful)
				keep := shares[id-1]
				packed := packBands(sp, keep)
				r.Compute(float64(len(packed))*8*cost.MemByteTime, budget.UniqueRedundancy)
				r.SendFloats(0, tagTileBands, packed)
			}
			r.SetResult(0.0)
			return
		}

		// --- Coordinator: fan out, collect, stitch, recurse ------------
		var hub float64
		cur := im
		for l := 0; l < levels; l++ {
			half := cur.Rows / 2
			shares := tileShares(half, backends)
			r0 := 0
			t := r.Clock()
			for i, share := range shares {
				h := 2*share + halo
				stripe := extractWrappedRows(cur, r0, h)
				// Slicing stripes out of the level is parallelization
				// redundancy the single-node transform never pays.
				r.Compute(float64(h*cur.Cols)*8*cost.MemByteTime, budget.UniqueRedundancy)
				r.SendFloats(i+1, tagTileStripe, stripe.Pix)
				r0 += 2 * share
			}
			ll := image.New(half, cur.Cols/2)
			db := wavelet.DetailBands{
				LH: image.New(half, cur.Cols/2),
				HL: image.New(half, cur.Cols/2),
				HH: image.New(half, cur.Cols/2),
			}
			r0 = 0
			for i, share := range shares {
				packed, _ := r.RecvFloats(i+1, tagTileBands)
				unpackBands(ll, db, r0, share, packed)
				r0 += share
			}
			hub += r.Clock() - t
			stitched.Levels[levels-1-l] = db
			cur = ll
		}
		stitched.Approx = cur
		r.SetResult(hub)
	}

	sim, err := nx.RunCtx(ctx, nx.Config{Machine: machine, Placement: pl, Procs: p}, prog)
	if err != nil {
		return nil, err
	}
	if err := verifyStitched(stitched, want); err != nil {
		return nil, fmt.Errorf("experiments: tile/scale P=%d %s: %w", p, pl.Name(), err)
	}
	return &tileFanoutResult{sim: sim, hubComm: sim.Values[0].(float64)}, nil
}

// tileShares distributes half output rows over at most n stripes —
// the coordinator's stripeShares rule, duplicated on the backends so
// both sides derive identical geometry without a handshake.
func tileShares(half, n int) []int {
	if n > half {
		n = half
	}
	if n < 1 {
		n = 1
	}
	base, rem := half/n, half%n
	shares := make([]int, n)
	for i := range shares {
		shares[i] = base
		if i < rem {
			shares[i]++
		}
	}
	return shares
}

// extractWrappedRows copies h full-width rows starting at r0, wrapping
// modulo the level height — periodic extension, exactly as the gateway.
func extractWrappedRows(im *image.Image, r0, h int) *image.Image {
	out := image.New(h, im.Cols)
	for m := 0; m < h; m++ {
		copy(out.Row(m), im.Row((r0+m)%im.Rows))
	}
	return out
}

// packBands flattens the kept rows of a one-level pyramid LL|LH|HL|HH.
func packBands(sp *wavelet.Pyramid, keep int) []float64 {
	cols := sp.Approx.Cols
	packed := make([]float64, 0, 4*keep*cols)
	for _, b := range []*image.Image{sp.Approx, sp.Levels[0].LH, sp.Levels[0].HL, sp.Levels[0].HH} {
		for m := 0; m < keep; m++ {
			packed = append(packed, b.Row(m)...)
		}
	}
	return packed
}

// unpackBands places a backend's packed bands at output row r0.
func unpackBands(ll *image.Image, db wavelet.DetailBands, r0, share int, packed []float64) {
	cols := ll.Cols
	for _, b := range []*image.Image{ll, db.LH, db.HL, db.HH} {
		for m := 0; m < share; m++ {
			copy(b.Row(r0+m), packed[:cols])
			packed = packed[cols:]
		}
	}
}

// imageFromFloats wraps a flat row-major stripe as an image (copying).
func imageFromFloats(rows, cols int, flat []float64) *image.Image {
	if len(flat) != rows*cols {
		panic(&wavelet.UsageError{Op: "tile/scale", Detail: fmt.Sprintf("stripe %d floats != %dx%d", len(flat), rows, cols)})
	}
	out := image.New(rows, cols)
	copy(out.Pix, flat)
	return out
}

// verifyStitched checks the simulated fan-out reproduced the sequential
// transform bit for bit — the gateway tiling property, re-proved on the
// simulator every run.
func verifyStitched(got, want *wavelet.Pyramid) error {
	if got.Depth() != want.Depth() {
		return fmt.Errorf("stitched depth %d, want %d", got.Depth(), want.Depth())
	}
	if !image.EqualBits(got.Approx, want.Approx) {
		return fmt.Errorf("stitched approx band differs from the sequential transform")
	}
	for l := range want.Levels {
		if !image.EqualBits(got.Levels[l].LH, want.Levels[l].LH) ||
			!image.EqualBits(got.Levels[l].HL, want.Levels[l].HL) ||
			!image.EqualBits(got.Levels[l].HH, want.Levels[l].HH) {
			return fmt.Errorf("stitched detail level %d differs from the sequential transform", l)
		}
	}
	return nil
}
