package experiments

import (
	"context"
	"fmt"
	"os"
	"strings"

	"wavelethpc/internal/core"
	"wavelethpc/internal/harness"
	"wavelethpc/internal/image"
	"wavelethpc/internal/mesh"
	"wavelethpc/internal/nx"
)

// defaultProcs is the processor sweep of the paper's figures.
var defaultProcs = []int{1, 2, 4, 8, 16, 32}

// placementsFor returns the placements the Appendix A figures compare on
// the given machine: snake vs naive striping on the 2D mesh, linear on
// the T3D torus (where the paper's snake argument does not apply).
func placementsFor(m *mesh.Machine) []mesh.Placement {
	if m.Topology == mesh.Torus3D {
		return []mesh.Placement{mesh.LinearPlacement{M: m}}
	}
	return []mesh.Placement{mesh.SnakePlacement{Width: 4}, mesh.NaivePlacement{Width: 4}}
}

// waveletScaling is cmd/paragonsim's experiment: the paper's Figures 5-7
// speedup sweeps with optional overlap/block ablations and an optional
// nx event trace of one representative run.
func waveletScaling() harness.Experiment {
	return &harness.Func{
		ExpName: "wavelet/scaling",
		Desc:    "Figures 5-7: distributed wavelet decomposition speedup vs processor count",
		RunFunc: runWaveletScaling,
	}
}

func runWaveletScaling(ctx context.Context, opt harness.Options) (*harness.Report, error) {
	machine, err := mesh.MachineByName(machineOr(opt, "paragon"))
	if err != nil {
		return nil, err
	}
	size := harness.IntOr(opt.Size, 512)
	seed := opt.Seed
	if seed == 0 {
		seed = 42
	}
	im := image.Landsat(size, size, uint64(seed))
	procs := opt.ProcsOr(defaultProcs)
	placements := placementsFor(machine)

	rep := &harness.Report{Experiment: "wavelet/scaling"}
	figure := 5
	for _, cfg := range core.PaperConfigs() {
		if opt.Config != "" && cfg.Label != opt.Config {
			figure++
			continue
		}
		sec := harness.Section{
			Heading: fmt.Sprintf("Figure %d: %s performance, %s", figure, machine.Name, cfg.Label),
		}
		for _, pl := range placements {
			curve, err := core.RunScalingCtx(ctx, opt.Workers, im, machine, pl, cfg, procs)
			if err != nil {
				return nil, err
			}
			sec.Curves = append(sec.Curves, curve.Curve(machine.Name))
		}
		if opt.Overlap {
			txt, err := overlapAblation(im, machine, placements[0], cfg, procs)
			if err != nil {
				return nil, err
			}
			sec.Text += txt
		}
		if opt.Block {
			txt, err := blockAblation(im, machine, placements[0], cfg, procs)
			if err != nil {
				return nil, err
			}
			sec.Text += txt
		}
		rep.Sections = append(rep.Sections, sec)
		figure++
	}

	if opt.TracePath != "" {
		txt, err := traceRun(im, machine, placements[0], opt, procs)
		if err != nil {
			return nil, err
		}
		rep.Sections = append(rep.Sections, harness.Section{Text: txt})
	}
	return rep, nil
}

// overlapAblation reproduces the blocking- vs overlapped-guard panel.
func overlapAblation(im *image.Image, m *mesh.Machine, pl mesh.Placement, cfg core.PaperConfig, procs []int) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "--- overlapped guard exchange, %s ---\n", cfg.Label)
	fmt.Fprintf(&b, "%6s %14s %14s\n", "P", "blocking-guard", "overlap-guard")
	for _, p := range procs {
		baseCfg := core.DistConfig{Machine: m, Placement: pl, Procs: p, Bank: cfg.Bank, Levels: cfg.Levels}
		overCfg := baseCfg
		overCfg.Overlap = true
		rb, err := core.DistributedDecompose(im, baseCfg)
		if err != nil {
			fmt.Fprintf(&b, "%6d %14s (%v)\n", p, "-", err)
			continue
		}
		ro, err := core.DistributedDecompose(im, overCfg)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%6d %14.4g %14.4g\n", p, rb.GuardTime, ro.GuardTime)
	}
	b.WriteByte('\n')
	return b.String(), nil
}

// blockAblation reproduces the block-decomposition comparison panel.
func blockAblation(im *image.Image, m *mesh.Machine, pl mesh.Placement, cfg core.PaperConfig, procs []int) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "--- block-decomposition ablation, %s ---\n", cfg.Label)
	serial := core.SerialTime(m, im.Rows, im.Cols, cfg.Bank.DecLen(), cfg.Levels)
	fmt.Fprintf(&b, "%6s %12s %9s %8s\n", "P", "elapsed(s)", "speedup", "msgs")
	for _, p := range procs {
		res, err := core.BlockDecompose(im, core.DistConfig{
			Machine:   m,
			Placement: pl,
			Procs:     p,
			Bank:      cfg.Bank,
			Levels:    cfg.Levels,
		})
		if err != nil {
			fmt.Fprintf(&b, "%6d %12s (%v)\n", p, "-", err)
			continue
		}
		fmt.Fprintf(&b, "%6d %12.4g %9.2f %8d\n", p, res.Sim.Elapsed, serial/res.Sim.Elapsed, res.Sim.Msgs)
	}
	b.WriteByte('\n')
	return b.String(), nil
}

// traceRun re-runs one representative decomposition point with the nx
// event trace enabled and writes it to opt.TracePath. Tracing a
// dedicated run (rather than a sweep point) keeps the trace buffer out
// of the concurrent sweep and makes the traced configuration explicit.
func traceRun(im *image.Image, m *mesh.Machine, pl mesh.Placement, opt harness.Options, procs []int) (string, error) {
	cfg := core.PaperConfigs()[0]
	if opt.Config != "" {
		for _, c := range core.PaperConfigs() {
			if c.Label == opt.Config {
				cfg = c
			}
		}
	}
	p := procs[len(procs)-1]
	tr := &nx.Trace{Label: fmt.Sprintf("%s %s P=%d wavelet decomposition", m.Name, cfg.Label, p)}
	_, err := core.DistributedDecompose(im, core.DistConfig{
		Machine:   m,
		Placement: pl,
		Procs:     p,
		Bank:      cfg.Bank,
		Levels:    cfg.Levels,
		Trace:     tr,
	})
	if err != nil {
		return "", fmt.Errorf("traced run: %w", err)
	}
	f, err := os.Create(opt.TracePath)
	if err != nil {
		return "", err
	}
	if err := tr.WriteFile(f, opt.TracePath); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return fmt.Sprintf("wrote %s (%d events, %s %s P=%d)\n", opt.TracePath, len(tr.Events), m.Name, cfg.Label, p), nil
}

// machineOr returns the configured machine name or the default.
func machineOr(opt harness.Options, def string) string {
	if opt.Machine != "" {
		return opt.Machine
	}
	return def
}
