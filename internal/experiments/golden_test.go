package experiments

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wavelethpc/internal/harness"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata goldens from current output")

// TestExptablesQuickGolden pins the full quick-mode reproduction output
// byte for byte. The golden was captured before the fast-path kernel
// layer existed, so this test is the end-to-end proof that dispatching
// wavelet.Decompose through internal/wavelet/kernel changes nothing the
// paper reproduction can observe — every table entry, residual, and
// speedup digit must survive the optimization untouched.
func TestExptablesQuickGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("quick exptables run still takes seconds")
	}
	rep, err := harness.RunByName(context.Background(), "exptables", harness.Options{Quick: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rep.Print(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	path := filepath.Join("testdata", "exptables_quick.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got == string(want) {
		return
	}
	// Report the first diverging line rather than dumping both documents.
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	n := len(gotLines)
	if len(wantLines) < n {
		n = len(wantLines)
	}
	for i := 0; i < n; i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("output diverges from golden at line %d:\n got: %q\nwant: %q\n(rerun with -update-golden after verifying the change is intended)", i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("output length differs: got %d lines, golden %d lines", len(gotLines), len(wantLines))
}
