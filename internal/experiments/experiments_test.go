package experiments

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wavelethpc/internal/harness"
)

func TestCatalogRegistered(t *testing.T) {
	for _, name := range []string{"wavelet/scaling", "wavelet/faults", "nbody/scaling", "pic/scaling", "workloads/tables", "exptables"} {
		if _, err := harness.Lookup(name); err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
		}
	}
}

func TestWaveletScalingReport(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.json")
	rep, err := harness.RunByName(context.Background(), "wavelet/scaling", harness.Options{
		Size:      64,
		Procs:     []int{1, 2},
		Config:    "F8/L1",
		TracePath: trace,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rep.Print(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "=== Figure 5: paragon performance, F8/L1 ===") {
		t.Errorf("missing figure heading:\n%s", out)
	}
	if !strings.Contains(out, "snake placement") || !strings.Contains(out, "naive placement") {
		t.Errorf("missing placement curves:\n%s", out)
	}
	if strings.Contains(out, "Figure 6") {
		t.Errorf("-config filter did not restrict the figures:\n%s", out)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "traceEvents") {
		t.Error("trace file is not in Chrome trace_event format")
	}
	arts := rep.Artifacts()
	if len(arts) != 2 {
		t.Fatalf("artifact count = %d, want 2 (snake + naive curve)", len(arts))
	}
}

func TestWaveletFaultsReport(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	rep, err := harness.RunByName(context.Background(), "wavelet/faults", harness.Options{
		Quick:     true,
		TracePath: trace,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rep.Print(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Chaos sweep",
		"Completion and overhead vs drop rate",
		"Link failures",
		"completed",
		"reroutes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// The trace of the chaos run must record the injected faults and the
	// recovery machinery at work.
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{`"drop"`, `"retry"`, `"reroute"`, `"crash"`} {
		if !strings.Contains(string(data), kind) {
			t.Errorf("trace has no %s event", kind)
		}
	}
}

// TestWaveletFaultsDeterministic is the acceptance check that the chaos
// experiment's measured overheads reproduce across same-seed runs.
func TestWaveletFaultsDeterministic(t *testing.T) {
	run := func() string {
		rep, err := harness.RunByName(context.Background(), "wavelet/faults", harness.Options{
			Quick: true,
			Seed:  7,
		})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := rep.Print(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same-seed chaos reports differ:\n%s\nvs\n%s", a, b)
	}
}

func TestWorkloadTablesSections(t *testing.T) {
	rep, err := harness.RunByName(context.Background(), "workloads/tables", harness.Options{Section: "centroids"})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rep.Print(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Table 7: centroids") {
		t.Errorf("missing centroids table:\n%s", out)
	}
	if strings.Contains(out, "Table 8") || strings.Contains(out, "Table 2") {
		t.Errorf("-section centroids printed other tables:\n%s", out)
	}
}
