// Package experiments is the catalog of the repo's paper-reproduction
// drivers. Importing it registers every experiment with the harness
// registry (internal/harness); the cmd/ tools are thin shells that look
// experiments up by name, run them, and print or export the returned
// report. See DESIGN.md §5.
package experiments

import (
	"wavelethpc/internal/harness"
)

func init() {
	harness.Register(waveletScaling())
	harness.Register(waveletFaults())
	harness.Register(tileScale())
	harness.Register(nbodyScaling())
	harness.Register(picScaling())
	harness.Register(workloadTables())
	harness.Register(expTables())
}
