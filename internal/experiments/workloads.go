package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"wavelethpc/internal/harness"
	"wavelethpc/internal/oracle"
	"wavelethpc/internal/workload"
)

// workloadTables is cmd/workloads' experiment: the Appendix C
// characterization tables. Options.Section restricts the output to one
// table group (example, centroids, similarity, smooth, machines).
func workloadTables() harness.Experiment {
	return &harness.Func{
		ExpName: "workloads/tables",
		Desc:    "Appendix C Tables 1-9: workload centroids, similarity, and smoothability",
		RunFunc: runWorkloadTables,
	}
}

func runWorkloadTables(ctx context.Context, opt harness.Options) (*harness.Report, error) {
	section := opt.Section
	if section == "" {
		section = "all"
	}
	switch section {
	case "all", "example", "centroids", "similarity", "smooth", "machines":
	default:
		return nil, fmt.Errorf("workloads: unknown section %q (known: all, example, centroids, similarity, smooth, machines)", section)
	}
	all := section == "all"
	rep := &harness.Report{Experiment: "workloads/tables"}

	if all || section == "example" {
		rep.Sections = append(rep.Sections, exampleSuiteSections()...)
	}

	if section == "example" {
		return rep, nil
	}

	// Schedule the NAS-like kernels once.
	specs := oracle.NASKernels()
	names := make([]string, 0, len(specs))
	traces := map[string][]oracle.Instr{}
	cents := map[string]oracle.PI{}
	for _, spec := range specs {
		names = append(names, spec.Name)
		tr := spec.Generate()
		traces[spec.Name] = tr
		cents[spec.Name] = workload.Centroid(oracle.Schedule(tr))
	}
	if all || section == "centroids" {
		rep.Sections = append(rep.Sections, harness.Section{
			Heading: "Table 7: centroids of the NAS-like workloads",
			Text:    workload.FormatCentroids(names, cents) + "\n",
		})
	}
	if all || section == "similarity" {
		rep.Sections = append(rep.Sections, harness.Section{
			Heading: "Table 8: pairwise similarity (0 identical, 1 orthogonal)",
			Text:    workload.FormatSimilarity(names, workload.SimilarityMatrix(names, cents)) + "\n",
		})
	}
	if all || section == "machines" {
		var b strings.Builder
		fmt.Fprintf(&b, "%-10s %14s %20s %14s\n", "workload", "oracle avg-par", "executed avg-par", "window-64")
		for _, n := range names {
			tr := traces[n]
			o := oracle.Summarize(oracle.Schedule(tr))
			e := oracle.Summarize(oracle.ScheduleTyped(tr, oracle.CrayYMPLimits()))
			w := oracle.Summarize(oracle.ScheduleWindowed(tr, 64))
			fmt.Fprintf(&b, "%-10s %14.1f %20.1f %14.1f\n", n, o.AvgParallelism, e.AvgParallelism, w.AvgParallelism)
		}
		b.WriteByte('\n')
		rep.Sections = append(rep.Sections, harness.Section{
			Heading: "Architecture dependence: oracle vs executed parallelism (Cray-Y-MP-like FUs)",
			Text:    b.String(),
		})
	}
	if all || section == "smooth" {
		rep.Sections = append(rep.Sections, harness.Section{
			Heading: "Table 9: smoothability and finite-processor critical paths",
			Text:    smoothabilityPanel(names, traces) + "\n",
		})
	}
	return rep, nil
}

// smoothabilityPanel renders the Table 9 rows for the given traces.
func smoothabilityPanel(names []string, traces map[string][]oracle.Instr) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %14s %12s %10s %14s %12s\n",
		"workload", "smoothability", "CPL(inf)", "P avg", "CPL(P avg)", "avg op delay")
	for _, n := range names {
		sm, stats, limited, delay := oracle.Smoothability(traces[n])
		fmt.Fprintf(&b, "%-10s %14.5f %12d %10.1f %14d %12.2f\n",
			n, sm, stats.CPL, stats.AvgParallelism, limited, delay)
	}
	return b.String()
}

// exampleSuiteSections reproduces the Section 4 comparison of the two
// techniques on the five-workload example.
func exampleSuiteSections() []harness.Section {
	suite := oracle.ExampleSuite()
	names := make([]string, 0, len(suite))
	for n := range suite {
		names = append(names, n)
	}
	sort.Strings(names)

	cents := map[string]oracle.PI{}
	for _, n := range names {
		cents[n] = workload.Centroid(suite[n])
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %20s %20s\n", "pair", "parallelism-matrix", "vector-space")
	pairs := [][2]string{{"WL1", "WL2"}, {"WL1", "WL3"}, {"WL1", "WL4"}, {"WL1", "WL5"}, {"WL3", "WL4"}}
	for _, pr := range pairs {
		frob := workload.FrobeniusDiff(workload.NewMatrix(suite[pr[0]]), workload.NewMatrix(suite[pr[1]]))
		vs := workload.Similarity(cents[pr[0]], cents[pr[1]])
		fmt.Fprintf(&b, "%-12s %20.4f %20.4f\n", pr[0]+" & "+pr[1], frob, vs)
	}
	b.WriteByte('\n')

	return []harness.Section{
		{
			Heading: "Table 2: example-suite centroids",
			Text:    workload.FormatCentroids(names, cents) + "\n",
		},
		{
			Heading: "Tables 1/3/4: parallelism-matrix vs vector-space similarity",
			Text:    b.String(),
		},
	}
}
