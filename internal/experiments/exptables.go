package experiments

import (
	"context"
	"fmt"
	"strings"

	"wavelethpc/internal/core"
	"wavelethpc/internal/filter"
	"wavelethpc/internal/harness"
	"wavelethpc/internal/image"
	"wavelethpc/internal/mesh"
	"wavelethpc/internal/nbody"
	"wavelethpc/internal/oracle"
	"wavelethpc/internal/pic"
	"wavelethpc/internal/simd"
	"wavelethpc/internal/wavelet"
	"wavelethpc/internal/workload"
)

// expTables is cmd/exptables' experiment: every table and figure of the
// paper and its appendices in one report. The independent artifact
// groups are scheduled concurrently through harness.Sweep (each group's
// processor sweep is itself concurrent), while the report preserves the
// established section order.
func expTables() harness.Experiment {
	return &harness.Func{
		ExpName: "exptables",
		Desc:    "every paper/appendix table and figure in one run (Quick shrinks sweeps)",
		RunFunc: runExpTables,
	}
}

type sectionsJob func(ctx context.Context) ([]harness.Section, error)

func runExpTables(ctx context.Context, opt harness.Options) (*harness.Report, error) {
	procs := opt.ProcsOr(defaultProcs)
	nbodySizes := []int{1024, 4096, 32768}
	picParticles := []int{256 << 10, 1 << 20}
	imSize := harness.IntOr(opt.Size, 512)
	if opt.Quick {
		procs = opt.ProcsOr([]int{1, 4, 16})
		nbodySizes = []int{1024, 4096}
		picParticles = []int{65536}
		imSize = harness.IntOr(opt.Size, 256)
	}
	im := image.Landsat(imSize, imSize, 42)
	paragon := mesh.Paragon()
	workers := opt.Workers

	banner := func(s string) sectionsJob {
		return func(context.Context) ([]harness.Section, error) {
			return []harness.Section{{Text: s + "\n\n"}}, nil
		}
	}

	var jobs []sectionsJob

	// ---- Appendix A -----------------------------------------------------
	jobs = append(jobs, banner("################ APPENDIX A: WAVELET DECOMPOSITION ################"))
	jobs = append(jobs, func(ctx context.Context) ([]harness.Section, error) {
		rows, err := core.Table1(image.Landsat(512, 512, 42), simd.Table1MasPar())
		if err != nil {
			return nil, err
		}
		return []harness.Section{{
			Heading: "Table 1: comparative decomposition seconds (512x512 image)",
			Tables:  []*harness.Table{core.Table1Table(rows)},
		}}, nil
	})
	figure := 5
	for _, cfg := range core.PaperConfigs() {
		cfg := cfg
		fig := figure
		jobs = append(jobs, func(ctx context.Context) ([]harness.Section, error) {
			sec := harness.Section{
				Heading: fmt.Sprintf("Figure %d: Paragon performance, %s (%dx%d image)", fig, cfg.Label, imSize, imSize),
			}
			for _, pl := range []mesh.Placement{mesh.SnakePlacement{Width: 4}, mesh.NaivePlacement{Width: 4}} {
				curve, err := core.RunScalingCtx(ctx, workers, im, paragon, pl, cfg, procs)
				if err != nil {
					return nil, err
				}
				sec.Curves = append(sec.Curves, curve.Curve(""))
			}
			return []harness.Section{sec}, nil
		})
		figure++
	}
	jobs = append(jobs, func(ctx context.Context) ([]harness.Section, error) {
		txt, err := masparAblation()
		if err != nil {
			return nil, err
		}
		return []harness.Section{{
			Heading: "Section 4.1 ablation: MasPar algorithms and virtualizations (F8/L1)",
			Text:    txt,
		}}, nil
	})

	// ---- Appendix B -----------------------------------------------------
	jobs = append(jobs, banner("################ APPENDIX B: N-BODY AND PIC OVERHEAD ################"))
	jobs = append(jobs, func(ctx context.Context) ([]harness.Section, error) {
		serial, err := nbody.SerialTableData(1)
		if err != nil {
			return nil, err
		}
		return []harness.Section{{
			Heading: "Tables 1-2 (N-body rows): serial per-iteration seconds",
			Tables:  []*harness.Table{serial},
		}}, nil
	})
	jobs = append(jobs, func(ctx context.Context) ([]harness.Section, error) {
		serial, err := pic.SerialTableData()
		if err != nil {
			return nil, err
		}
		return []harness.Section{{
			Heading: "Tables 1-2 (PIC rows): serial per-iteration seconds",
			Tables:  []*harness.Table{serial},
		}}, nil
	})
	for _, machine := range []string{"paragon", "t3d"} {
		machine := machine
		for _, n := range nbodySizes {
			n := n
			jobs = append(jobs, func(ctx context.Context) ([]harness.Section, error) {
				res, err := nbody.RunScalingCtx(ctx, workers, machine, n, procs, 1, 1)
				if err != nil {
					return nil, err
				}
				return []harness.Section{{
					Heading: fmt.Sprintf("N-body scalability + budget, %d bodies, %s (Figures 3-6, 15-18)", n, machine),
					Curves:  []*harness.Curve{nbody.Curve(machine, res)},
				}}, nil
			})
		}
		for _, np := range picParticles {
			np := np
			jobs = append(jobs, func(ctx context.Context) ([]harness.Section, error) {
				res, err := pic.RunScalingCtx(ctx, workers, machine, np, 32, procs, 1, 1)
				if err != nil {
					return nil, err
				}
				return []harness.Section{{
					Heading: fmt.Sprintf("PIC scalability + budget, %d particles m=32, %s (Figures 7-14, 19-25)", np, machine),
					Curves:  []*harness.Curve{pic.Curve(machine, res)},
				}}, nil
			})
		}
	}
	jobs = append(jobs, func(ctx context.Context) ([]harness.Section, error) {
		var b strings.Builder
		fmt.Fprintf(&b, "%6s %12s %12s\n", "P", "gssum(s)", "prefix(s)")
		for _, p := range []int{4, 8, 16} {
			naive, prefix, err := pic.GlobalSumComparison("paragon", 65536, 32, p, 1)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(&b, "%6d %12.4g %12.4g\n", p, naive, prefix)
		}
		b.WriteByte('\n')
		return []harness.Section{{
			Heading: "gssum vs parallel-prefix global sum (Section 4.2.2)",
			Text:    b.String(),
		}}, nil
	})

	// ---- Appendix C -----------------------------------------------------
	jobs = append(jobs, banner("################ APPENDIX C: WORKLOAD CHARACTERIZATION ################"))
	jobs = append(jobs, appendixCJob)

	// ---- Extension artifacts (see DESIGN.md §4) -------------------------
	jobs = append(jobs, banner("################ EXTENSION ABLATIONS ################"))
	jobs = append(jobs, func(ctx context.Context) ([]harness.Section, error) {
		return reconstructionSection(im, paragon)
	})
	jobs = append(jobs, costzonesJob)
	jobs = append(jobs, func(ctx context.Context) ([]harness.Section, error) {
		return fieldExchangeSection(paragon)
	})
	jobs = append(jobs, architectureJob)

	groups, err := harness.Sweep(ctx, jobs, workers, func(ctx context.Context, job sectionsJob) ([]harness.Section, error) {
		return job(ctx)
	})
	if err != nil {
		return nil, err
	}
	rep := &harness.Report{Experiment: "exptables"}
	for _, g := range groups {
		rep.Sections = append(rep.Sections, g...)
	}
	return rep, nil
}

// masparAblation renders the Section 4.1 algorithm/virtualization grid.
func masparAblation() (string, error) {
	m2 := simd.MP2()
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-14s %12s\n", "algorithm", "virtualization", "seconds")
	for _, alg := range []simd.Algorithm{simd.Systolic, simd.Dilution} {
		for _, virt := range []simd.Virtualization{simd.Hierarchical, simd.CutAndStack} {
			t, err := m2.DecomposeTime(alg, virt, 512, 8, 1)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%-12s %-14s %12.5f\n", alg, virt, t)
		}
	}
	b.WriteByte('\n')
	return b.String(), nil
}

// appendixCJob builds the workload-characterization tables (Tables 7-9).
func appendixCJob(ctx context.Context) ([]harness.Section, error) {
	specs := oracle.NASKernels()
	names := make([]string, 0, len(specs))
	cents := map[string]oracle.PI{}
	var smooth strings.Builder
	fmt.Fprintf(&smooth, "%-10s %14s %12s %10s %14s %12s\n",
		"workload", "smoothability", "CPL(inf)", "P avg", "CPL(P avg)", "avg op delay")
	for _, spec := range specs {
		tr := spec.Generate()
		names = append(names, spec.Name)
		cents[spec.Name] = workload.Centroid(oracle.Schedule(tr))
		sm, stats, limited, delay := oracle.Smoothability(tr)
		fmt.Fprintf(&smooth, "%-10s %14.5f %12d %10.1f %14d %12.2f\n",
			spec.Name, sm, stats.CPL, stats.AvgParallelism, limited, delay)
	}
	smooth.WriteByte('\n')
	return []harness.Section{
		{
			Heading: "Table 9: smoothability (printed with Table 7 centroids)",
			Text:    smooth.String(),
		},
		{
			Heading: "Table 7: NAS-like workload centroids",
			Text:    workload.FormatCentroids(names, cents) + "\n",
		},
		{
			Heading: "Table 8: pairwise similarity",
			Text:    workload.FormatSimilarity(names, workload.SimilarityMatrix(names, cents)) + "\n",
		},
	}, nil
}

// reconstructionSection runs the Figure 2 distributed reconstruction.
func reconstructionSection(im *image.Image, paragon *mesh.Machine) ([]harness.Section, error) {
	pyr, err := wavelet.Decompose(im, core.PaperConfigs()[0].Bank, filter.Periodic, 1)
	if err != nil {
		return nil, err
	}
	_, rsim, err := core.DistributedReconstruct(pyr, core.DistConfig{
		Machine: paragon, Placement: mesh.SnakePlacement{Width: 4},
		Procs: 8, Bank: core.PaperConfigs()[0].Bank, Levels: 1,
	})
	if err != nil {
		return nil, err
	}
	return []harness.Section{{
		Heading: "Figure 2: distributed reconstruction on the simulated Paragon",
		Text:    fmt.Sprintf("F8/L1 reconstruction at P=8: %.4g simulated seconds (%s)\n\n", rsim.Elapsed, rsim.Budget),
	}}, nil
}

// costzonesJob compares Costzones and ORB partitioning quality.
func costzonesJob(ctx context.Context) ([]harness.Section, error) {
	bodies := nbody.UniformDisk(8192, 10, 1)
	nbody.Step(bodies, 1e-3)
	tree := nbody.Build(bodies)
	tree.ComputeCenters()
	cz := nbody.EvaluatePartition(bodies, tree.Costzones(16))
	orb := nbody.EvaluatePartition(bodies, nbody.ORBPartition(bodies, 16))
	cross, err := nbody.CrossoverSize("paragon", 1)
	if err != nil {
		return nil, err
	}
	return []harness.Section{{
		Heading: "Costzones vs ORB partitioning (8K bodies, 16 zones)",
		Text: fmt.Sprintf("costzones imbalance %.3f, ORB imbalance %.3f\n", cz.Imbalance, orb.Imbalance) +
			fmt.Sprintf("Barnes-Hut overtakes direct summation at ~%d bodies on the Paragon model\n\n", cross),
	}}, nil
}

// fieldExchangeSection compares the PIC field-exchange strategies.
func fieldExchangeSection(paragon *mesh.Machine) ([]harness.Section, error) {
	var b strings.Builder
	for _, ex := range []pic.FieldExchange{pic.TransposeExchange, pic.GatherExchange} {
		res, err := pic.ParallelRun(pic.NewUniform(4096, 16, 1), pic.ParallelConfig{
			Machine: paragon, Placement: mesh.SnakePlacement{Width: 4},
			Procs: 8, Steps: 1, DTMax: 0.1, Sum: pic.PrefixSum, Exchange: ex,
		})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "%-12s %.4g s/step, %d bytes on the wires\n", ex, res.PerStep, res.Sim.Bytes)
	}
	b.WriteByte('\n')
	return []harness.Section{{
		Heading: "PIC field exchange: transpose vs all-gather (4096 particles, m=16, P=8)",
		Text:    b.String(),
	}}, nil
}

// architectureJob compares oracle and resource-limited parallelism.
func architectureJob(ctx context.Context) ([]harness.Section, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %14s %20s\n", "workload", "oracle avg-par", "Y-MP-like avg-par")
	for _, spec := range oracle.NASKernels()[:4] {
		tr := spec.Generate()
		o := oracle.Summarize(oracle.Schedule(tr))
		e := oracle.Summarize(oracle.ScheduleTyped(tr, oracle.CrayYMPLimits()))
		fmt.Fprintf(&b, "%-10s %14.1f %20.1f\n", spec.Name, o.AvgParallelism, e.AvgParallelism)
	}
	return []harness.Section{{
		Heading: "Architecture dependence: oracle vs executed parallelism",
		Text:    b.String(),
	}}, nil
}
