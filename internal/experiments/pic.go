package experiments

import (
	"context"
	"fmt"
	"strings"

	"wavelethpc/internal/harness"
	"wavelethpc/internal/pic"
)

// picScaling is cmd/picsim's experiment: the Appendix B PIC serial
// table, per-particle-count scalability sweeps with the Figure 10
// communication-balance panel, and the optional global-sum ablation.
func picScaling() harness.Experiment {
	return &harness.Func{
		ExpName: "pic/scaling",
		Desc:    "Appendix B Figures 7-14, 19-25: PIC scalability, budgets, and gssum ablation",
		RunFunc: runPicScaling,
	}
}

func runPicScaling(ctx context.Context, opt harness.Options) (*harness.Report, error) {
	machine := machineOr(opt, "paragon")
	grid := harness.IntOr(opt.Grid, 32)
	steps := harness.IntOr(opt.Steps, 1)
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	procs := opt.ProcsOr(defaultProcs)
	rep := &harness.Report{Experiment: "pic/scaling"}

	serial, err := pic.SerialTableData()
	if err != nil {
		return nil, err
	}
	rep.Sections = append(rep.Sections, harness.Section{
		Heading: "Serial per-iteration times (Appendix B Tables 1-2, PIC rows)",
		Tables:  []*harness.Table{serial},
	})

	for _, np := range opt.SizesOr([]int{262144, 1048576}) {
		res, err := pic.RunScalingCtx(ctx, opt.Workers, machine, np, grid, procs, steps, seed)
		if err != nil {
			return nil, err
		}
		rep.Sections = append(rep.Sections, harness.Section{
			Heading: fmt.Sprintf("PIC scalability, %d particles, m=%d, %s", np, grid, machine),
			Curves:  []*harness.Curve{pic.Curve(machine, res)},
			Text:    commBalance(res),
		})
	}

	if opt.GSSum {
		txt, err := gssumAblation(machine, grid, procs, seed)
		if err != nil {
			return nil, err
		}
		rep.Sections = append(rep.Sections, harness.Section{
			Heading: "Global-sum ablation: gssum vs parallel-prefix (per-iteration seconds)",
			Text:    txt,
		})
	}
	return rep, nil
}

// commBalance renders the Figure 10 average- vs maximum-communication
// panel for one sweep.
func commBalance(res []pic.ScalingResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %14s %14s   (communication balance, Figure 10)\n", "P", "avg comm(s)", "max comm(s)")
	for _, r := range res {
		fmt.Fprintf(&b, "%6d %14.4g %14.4g\n", r.Procs, r.AvgComm, r.MaxComm)
	}
	b.WriteByte('\n')
	return b.String()
}

// gssumAblation compares the paper's gssum against the parallel-prefix
// replacement across processor counts.
func gssumAblation(machine string, grid int, procs []int, seed int64) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %12s %12s %8s\n", "P", "gssum", "prefix", "ratio")
	for _, p := range procs {
		if p < 2 {
			continue
		}
		naive, prefix, err := pic.GlobalSumComparison(machine, 65536, grid, p, seed)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%6d %12.4g %12.4g %8.2f\n", p, naive, prefix, naive/prefix)
	}
	return b.String(), nil
}
