package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"os"

	"wavelethpc/internal/core"
	"wavelethpc/internal/fault"
	"wavelethpc/internal/harness"
	"wavelethpc/internal/image"
	"wavelethpc/internal/mesh"
	"wavelethpc/internal/nx"
	"wavelethpc/internal/wavelet"
)

// waveletFaults is the chaos experiment: the striped decomposition under
// deterministic fault injection — transient message loss with reliable
// retransmission, a node crash with checkpoint/restart recovery, and
// failed links with YX rerouting — swept over fault rate and checkpoint
// interval.
func waveletFaults() harness.Experiment {
	return &harness.Func{
		ExpName: "wavelet/faults",
		Desc:    "chaos sweep: completion probability and fault-tolerance overhead vs fault rate and checkpoint interval",
		RunFunc: runWaveletFaults,
	}
}

// faultCell is one (drop rate, checkpoint interval) sweep point.
type faultCell struct {
	rate     float64
	interval int
}

// cellStats aggregates the trials of one sweep point.
type cellStats struct {
	cell       faultCell
	trials     int
	completed  int
	exact      int
	attempts   float64
	restarts   float64
	overhead   float64 // summed over completed trials
	ckpt       float64
	retries    float64
	rerouteSum float64
	wasted     float64
	budget     *harness.Point // representative completed trial's budget
}

// faultTrials is the per-cell trial count (halved under -quick).
const faultTrials = 4

func runWaveletFaults(ctx context.Context, opt harness.Options) (*harness.Report, error) {
	machine, err := mesh.MachineByName(machineOr(opt, "paragon"))
	if err != nil {
		return nil, err
	}
	// The chaos sweep runs many restarting simulations per cell, so it
	// defaults to a smaller image than the scaling figures.
	size := harness.IntOr(opt.Size, 128)
	seed := opt.Seed
	if seed == 0 {
		seed = 42
	}
	im := image.Landsat(size, size, uint64(seed))
	procs := opt.ProcsOr([]int{8})
	p := procs[len(procs)-1]
	cfg := core.PaperConfigs()[2] // F2/L4: four levels give the interval sweep room
	if opt.Config != "" {
		for _, c := range core.PaperConfigs() {
			if c.Label == opt.Config {
				cfg = c
			}
		}
	}

	baseCfg := core.DistConfig{
		Machine:   machine,
		Placement: mesh.SnakePlacement{Width: 4},
		Procs:     p,
		Bank:      cfg.Bank,
		Levels:    cfg.Levels,
	}
	baseline, err := core.DistributedDecomposeCtx(ctx, im, baseCfg)
	if err != nil {
		return nil, fmt.Errorf("wavelet/faults: fault-free baseline: %w", err)
	}

	rates := []float64{0, 0.02, 0.05, 0.1}
	intervals := []int{0, 1, 2}
	trials := faultTrials
	if opt.Quick {
		rates = []float64{0, 0.05}
		intervals = []int{0, 1}
		trials = 2
	}

	rep := &harness.Report{Experiment: "wavelet/faults"}
	rep.Sections = append(rep.Sections, harness.Section{
		Heading: fmt.Sprintf("Chaos sweep: %s %s P=%d, %dx%d image, %d trials/cell, fault-free baseline %.4g s",
			machine.Name, cfg.Label, p, size, size, trials, baseline.Sim.Elapsed),
	})

	// --- Section 1: transient loss × checkpoint interval, with a crash --
	var cells []faultCell
	for _, iv := range intervals {
		for _, rate := range rates {
			cells = append(cells, faultCell{rate: rate, interval: iv})
		}
	}
	stats, err := harness.Sweep(ctx, cells, opt.Workers, func(ctx context.Context, c faultCell) (cellStats, error) {
		return runFaultCell(ctx, im, baseCfg, baseline, c, trials, seed, true)
	})
	if err != nil {
		return nil, err
	}
	sec := harness.Section{
		Heading: "Completion and overhead vs drop rate, one crash per trial, reliable delivery",
	}
	for _, iv := range intervals {
		curve := &harness.Curve{
			Name:    harness.SeriesName("faults", fmt.Sprintf("ckpt%d", iv)),
			Title:   fmt.Sprintf("checkpoint interval %s", intervalLabel(iv)),
			Labels:  []harness.Label{{Key: "checkpoint_every", Value: fmt.Sprint(iv)}},
			Columns: faultColumns("droprate"),
		}
		for _, s := range stats {
			if s.cell.interval == iv {
				curve.Points = append(curve.Points, s.point(s.cell.rate))
			}
		}
		sec.Curves = append(sec.Curves, curve)
	}
	rep.Sections = append(rep.Sections, sec)

	// --- Section 2: permanent link failures and rerouting ---------------
	// The barrier's power-of-two exchange partners become column-aligned
	// once the job spans more than two snake rows, so beyond P=8 every
	// interior link lies on some same-row/column pair's only route and a
	// single failure deterministically partitions the job. The rerouting
	// sweep therefore runs on a sub-job capped at 8 ranks, where exchange
	// partners span both dimensions and a YX detour exists.
	pLink := p
	if pLink > 8 {
		pLink = 8
	}
	linkCfg := baseCfg
	linkCfg.Procs = pLink
	linkBase := baseline
	if pLink != p {
		linkBase, err = core.DistributedDecomposeCtx(ctx, im, linkCfg)
		if err != nil {
			return nil, fmt.Errorf("wavelet/faults: link-sweep baseline: %w", err)
		}
	}
	linkCounts := []int{0, 1, 2, 3}
	if opt.Quick {
		linkCounts = []int{0, 2}
	}
	linkStats, err := harness.Sweep(ctx, linkCounts, opt.Workers, func(ctx context.Context, n int) (cellStats, error) {
		return runLinkCell(ctx, im, linkCfg, linkBase, n, trials, seed)
	})
	if err != nil {
		return nil, err
	}
	linkCurve := &harness.Curve{
		Name:    harness.SeriesName("faults", "links"),
		Title:   "failed links: rerouting until both dimension orders are cut",
		Columns: faultColumns("links"),
	}
	for i, s := range linkStats {
		linkCurve.Points = append(linkCurve.Points, s.point(float64(linkCounts[i])))
	}
	rep.Sections = append(rep.Sections, harness.Section{
		Heading: fmt.Sprintf("Link failures (P=%d, checkpoint interval 1, drop rate 0.02)", pLink),
		Curves:  []*harness.Curve{linkCurve},
	})

	if opt.TracePath != "" {
		txt, err := faultTraceRun(ctx, im, linkCfg, linkBase, seed, opt.TracePath)
		if err != nil {
			return nil, err
		}
		rep.Sections = append(rep.Sections, harness.Section{Text: txt})
	}
	return rep, nil
}

func intervalLabel(iv int) string {
	if iv == 0 {
		return "none (restart from scratch)"
	}
	return fmt.Sprintf("every %d level(s)", iv)
}

// faultColumns is the shared column layout of the chaos tables; first is
// the swept variable.
func faultColumns(sweep string) []harness.Column {
	return []harness.Column{
		{Name: sweep, CSV: sweep, Width: 9, Prec: 3, Verb: 'f'},
		{Name: "completed", CSV: "completed", Width: 10, Prec: 2, Verb: 'f'},
		{Name: "exact", CSV: "exact", Width: 7, Prec: 2, Verb: 'f'},
		{Name: "attempts", CSV: "attempts", Width: 9, Prec: 2, Verb: 'f'},
		{Name: "overhead", CSV: "overhead", Width: 9, Prec: 3, Verb: 'f'},
		{Name: "ckpt(s)", CSV: "ckpt_s", Unit: "s", Width: 10, Prec: 3, Verb: 'g'},
		{Name: "retries", CSV: "retries", Width: 8, Prec: 1, Verb: 'f'},
		{Name: "reroutes", CSV: "reroutes", Width: 9, Prec: 1, Verb: 'f'},
		{Name: "wasted(s)", CSV: "wasted_s", Unit: "s", Width: 10, Prec: 3, Verb: 'g'},
	}
}

// point renders the aggregated cell with the given sweep value, attaching
// the representative budget.
func (s *cellStats) point(sweepVal float64) harness.Point {
	n := float64(s.trials)
	done := float64(s.completed)
	pt := harness.Point{Values: []float64{
		sweepVal,
		done / n,
		float64(s.exact) / n,
		s.attempts / n,
		meanOver(s.overhead, done),
		meanOver(s.ckpt, done),
		s.retries / n,
		s.rerouteSum / n,
		s.wasted / n,
	}}
	if s.budget != nil {
		pt.Budget = s.budget.Budget
	}
	return pt
}

// meanOver divides a completed-trials accumulator, guarding n == 0.
func meanOver(sum, n float64) float64 {
	if n == 0 {
		return 0
	}
	return sum / n
}

// runFaultCell executes one (rate, interval) cell: trials deterministic
// fault-tolerant runs, each with per-message loss at the cell's rate and
// (when withCrash) one rank crash at a seeded fraction of the baseline
// time.
func runFaultCell(ctx context.Context, im *image.Image, baseCfg core.DistConfig, baseline *core.DistResult, c faultCell, trials int, seed int64, withCrash bool) (cellStats, error) {
	stats := cellStats{cell: c, trials: trials}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(seed<<16 ^ int64(trial)<<4 ^ int64(c.interval)))
		plan := &fault.Plan{
			Seed:     uint64(seed)<<8 ^ uint64(trial),
			DropProb: c.rate,
		}
		if withCrash {
			plan.Crashes = []fault.Crash{{
				Rank: rng.Intn(baseCfg.Procs),
				At:   (0.1 + 0.8*rng.Float64()) * baseline.Sim.Elapsed,
			}}
		}
		ft, err := core.FaultTolerantDecompose(ctx, im, core.FTConfig{
			DistConfig:      baseCfg,
			Plan:            plan,
			Reliable:        nx.ReliableConfig{Enabled: true},
			CheckpointEvery: c.interval,
		})
		if err != nil {
			return stats, fmt.Errorf("wavelet/faults: rate=%g interval=%d trial=%d: %w", c.rate, c.interval, trial, err)
		}
		stats.accumulate(ft, baseline)
	}
	return stats, nil
}

// detourableLinks filters the region's links down to those whose failure
// leaves the striped decomposition's traffic a YX detour. Links between
// ring-adjacent ranks (the single-hop guard channels) and links on rank
// 0's straight scatter/gather row and column have identical XY and YX
// routes, so failing one partitions a communicating pair and the job is
// deterministically lost — that regime is exercised by the unreachable
// tests; the sweep here measures graceful degradation through rerouting.
func detourableLinks(pl mesh.Placement, procs int, region []mesh.Link) []mesh.Link {
	host := make(map[mesh.Coord]int, procs)
	maxX, maxY := 0, 0
	c0 := pl.Coord(0, procs)
	for r := 0; r < procs; r++ {
		c := pl.Coord(r, procs)
		host[c] = r
		if c.Y == c0.Y && c.Z == c0.Z && c.X > maxX {
			maxX = c.X
		}
		if c.X == c0.X && c.Z == c0.Z && c.Y > maxY {
			maxY = c.Y
		}
	}
	var out []mesh.Link
	for _, l := range region {
		if a, ok := host[l.From]; ok {
			if b, ok := host[l.To]; ok && (a-b == 1 || b-a == 1) {
				continue // guard channel between ring neighbors
			}
		}
		if l.From.Z == c0.Z && l.To.Z == c0.Z {
			if l.From.Y == c0.Y && l.To.Y == c0.Y && l.From.X <= maxX && l.To.X <= maxX {
				continue // rank 0's straight scatter/gather row
			}
			if l.From.X == c0.X && l.To.X == c0.X && l.From.Y <= maxY && l.To.Y <= maxY {
				continue // rank 0's straight scatter/gather column
			}
		}
		out = append(out, l)
	}
	return out
}

// runLinkCell executes one failed-link-count cell: trials runs with n
// randomly failed detourable region links, a small drop rate, reliable
// delivery, and checkpointing. Single failures always reroute; stacked
// failures can still cut both dimension orders of a pair, in which case
// the non-completion shows up as an unreachable abandonment.
func runLinkCell(ctx context.Context, im *image.Image, baseCfg core.DistConfig, baseline *core.DistResult, n, trials int, seed int64) (cellStats, error) {
	stats := cellStats{trials: trials}
	h := (baseCfg.Procs + 3) / 4
	region := detourableLinks(baseCfg.Placement, baseCfg.Procs, fault.RegionLinks(baseCfg.Machine, 4, h))
	for trial := 0; trial < trials; trial++ {
		plan := &fault.Plan{
			Seed:     uint64(seed)<<8 ^ uint64(trial),
			DropProb: 0.02,
		}
		plan.FailRandomLinks(region, n, 0, uint64(trial)+1)
		ft, err := core.FaultTolerantDecompose(ctx, im, core.FTConfig{
			DistConfig:      baseCfg,
			Plan:            plan,
			Reliable:        nx.ReliableConfig{Enabled: true},
			CheckpointEvery: 1,
		})
		if err != nil {
			return stats, fmt.Errorf("wavelet/faults: links=%d trial=%d: %w", n, trial, err)
		}
		stats.accumulate(ft, baseline)
	}
	return stats, nil
}

// accumulate folds one trial into the cell.
func (s *cellStats) accumulate(ft *core.FTResult, baseline *core.DistResult) {
	s.attempts += float64(ft.Attempts)
	s.restarts += float64(ft.Restarts)
	s.wasted += ft.WastedTime
	if !ft.Completed {
		return
	}
	s.completed++
	s.overhead += ft.Overhead(baseline.Sim.Elapsed)
	s.ckpt += ft.CheckpointTime
	s.retries += float64(ft.Sim.Faults.Retries)
	s.rerouteSum += float64(ft.Sim.Faults.Reroutes)
	if pyramidsBitEqual(ft.Pyramid, baseline.Pyramid) {
		s.exact++
	}
	if s.budget == nil {
		b := ft.Sim.Budget
		s.budget = &harness.Point{Budget: &b}
	}
}

// pyramidsBitEqual reports bit-for-bit equality of two pyramids — the
// acceptance bar for checkpoint/restart recovery.
func pyramidsBitEqual(a, b *wavelet.Pyramid) bool {
	if a == nil || b == nil || a.Depth() != b.Depth() {
		return false
	}
	if !image.Equal(a.Approx, b.Approx, 0) {
		return false
	}
	for i := range a.Levels {
		if !image.Equal(a.Levels[i].LH, b.Levels[i].LH, 0) ||
			!image.Equal(a.Levels[i].HL, b.Levels[i].HL, 0) ||
			!image.Equal(a.Levels[i].HH, b.Levels[i].HH, 0) {
			return false
		}
	}
	return true
}

// faultTraceRun re-runs one faulty configuration with the nx event trace
// enabled, so drop/retry/reroute/crash events land in the exported file.
func faultTraceRun(ctx context.Context, im *image.Image, baseCfg core.DistConfig, baseline *core.DistResult, seed int64, path string) (string, error) {
	tr := &nx.Trace{Label: fmt.Sprintf("fault-injected %s P=%d wavelet decomposition", baseCfg.Machine.Name, baseCfg.Procs)}
	cfg := baseCfg
	cfg.Trace = tr
	plan := &fault.Plan{
		Seed:     uint64(seed),
		DropProb: 0.05,
		Crashes:  []fault.Crash{{Rank: 1, At: 0.5 * baseline.Sim.Elapsed}},
	}
	if cfg.Procs > 4 {
		// Fail the first vertical hop of rank 0's XY scatter route into the
		// second row: scatter traffic must take the YX detour, so the trace
		// records reroute events alongside the drops, retries, and crash.
		c0 := cfg.Placement.Coord(0, cfg.Procs)
		plan.Links = []fault.LinkFailure{{Link: mesh.Link{
			From: mesh.Coord{X: c0.X + 1, Y: c0.Y, Z: c0.Z},
			To:   mesh.Coord{X: c0.X + 1, Y: c0.Y + 1, Z: c0.Z},
		}}}
	}
	ft, err := core.FaultTolerantDecompose(ctx, im, core.FTConfig{
		DistConfig:      cfg,
		Plan:            plan,
		Reliable:        nx.ReliableConfig{Enabled: true},
		CheckpointEvery: 1,
	})
	if err != nil {
		return "", fmt.Errorf("traced fault run: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := tr.WriteFile(f, path); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return fmt.Sprintf("wrote %s (%d events across %d attempt(s), completed=%v)\n",
		path, len(tr.Events), ft.Attempts, ft.Completed), nil
}
