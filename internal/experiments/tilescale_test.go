package experiments

import (
	"context"
	"testing"

	"wavelethpc/internal/harness"
)

// TestTileScale runs the gateway fan-out scale model on a small image:
// the experiment itself verifies every stitched pyramid bit-for-bit
// against the sequential transform, so a nil error is the property.
func TestTileScale(t *testing.T) {
	rep, err := harness.RunByName(context.Background(), "tile/scale", harness.Options{
		Size:  64,
		Procs: []int{2, 3, 4, 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sections) != 1 {
		t.Fatalf("got %d sections, want 1", len(rep.Sections))
	}
	sec := rep.Sections[0]
	if len(sec.Curves) != 2 {
		t.Fatalf("got %d curves, want snake and naive", len(sec.Curves))
	}
	for _, c := range sec.Curves {
		if len(c.Points) != 4 {
			t.Fatalf("%s: got %d points, want 4", c.Name, len(c.Points))
		}
		// Backend counts ride in column 0; 16 ranks = 15 backends.
		if got := c.Points[3].Values[0]; got != 15 {
			t.Fatalf("%s: last point has %v backends, want 15", c.Name, got)
		}
		// The hub serializes all traffic, so its comm time must be
		// nonzero and grow with the fleet.
		if c.Points[0].Values[3] <= 0 {
			t.Fatalf("%s: hub comm time not recorded", c.Name)
		}
	}
}

// TestTileScaleDeterministic pins bit-reproducibility of the simulated
// timings: two runs of the same sweep point agree exactly.
func TestTileScaleDeterministic(t *testing.T) {
	run := func() *harness.Report {
		rep, err := harness.RunByName(context.Background(), "tile/scale", harness.Options{
			Size:  64,
			Procs: []int{4},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	pa := a.Sections[0].Curves[0].Points[0].Values
	pb := b.Sections[0].Curves[0].Points[0].Values
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("column %d: %v != %v across identical runs", i, pa[i], pb[i])
		}
	}
}
