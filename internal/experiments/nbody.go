package experiments

import (
	"context"
	"fmt"

	"wavelethpc/internal/harness"
	"wavelethpc/internal/nbody"
)

// nbodyScaling is cmd/nbodysim's experiment: the Appendix B N-body
// serial table plus per-size scalability/budget sweeps.
func nbodyScaling() harness.Experiment {
	return &harness.Func{
		ExpName: "nbody/scaling",
		Desc:    "Appendix B Figures 3-6, 15-18: N-body scalability and performance budgets",
		RunFunc: runNbodyScaling,
	}
}

func runNbodyScaling(ctx context.Context, opt harness.Options) (*harness.Report, error) {
	machine := machineOr(opt, "paragon")
	steps := harness.IntOr(opt.Steps, 1)
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	rep := &harness.Report{Experiment: "nbody/scaling"}

	serial, err := nbody.SerialTableData(seed)
	if err != nil {
		return nil, err
	}
	rep.Sections = append(rep.Sections, harness.Section{
		Heading: "Serial per-iteration times (Appendix B Tables 1-2, N-body rows)",
		Tables:  []*harness.Table{serial},
	})

	for _, n := range opt.SizesOr([]int{1024, 4096, 32768}) {
		res, err := nbody.RunScalingCtx(ctx, opt.Workers, machine, n, opt.ProcsOr(defaultProcs), steps, seed)
		if err != nil {
			return nil, err
		}
		rep.Sections = append(rep.Sections, harness.Section{
			Heading: fmt.Sprintf("Scalability and performance budget, %d bodies on %s", n, machine),
			Curves:  []*harness.Curve{nbody.Curve(machine, res)},
		})
	}
	return rep, nil
}
