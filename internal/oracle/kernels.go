package oracle

// Synthetic trace kernels standing in for the NAS Parallel Benchmark spy
// traces of Appendix C (the SPARC binaries and the spy/SITA toolchain are
// not reproducible; see DESIGN.md). Each kernel emits a deterministic
// dynamic trace whose dependence structure (parallel chain count, phase
// alternation) and operation mix are shaped to the report's published
// centroids (its Table 7), so the downstream analyses — centroids,
// similarity, smoothability — exercise the identical pipeline on
// workloads with the same relationships (embar≈fftpde, buk≈cgm,
// applu≈appbt, appsp an order of magnitude wider than everything else).

// KernelSpec parameterizes a synthetic workload.
type KernelSpec struct {
	// Name is the benchmark label.
	Name string
	// Chains is the number of independent dependence chains — the
	// resulting average parallelism is of this order.
	Chains int
	// ChainLen is the per-phase chain depth.
	ChainLen int
	// Phases alternate wide (all chains) and narrow (NarrowFrac·Chains)
	// sections, giving realistic parallelism-profile variability.
	Phases int
	// NarrowFrac is the active-chain fraction of narrow phases.
	NarrowFrac float64
	// Mix is the relative frequency of each operation type.
	Mix [NumOpTypes]float64
}

// Generate emits the kernel's dynamic trace. Types are dealt by largest-
// remainder quotas per chain step, so the realized mix tracks Mix exactly
// as counts grow; everything is deterministic.
func (k KernelSpec) Generate() []Instr {
	var mixTotal float64
	for _, v := range k.Mix {
		mixTotal += v
	}
	if mixTotal == 0 || k.Chains < 1 || k.ChainLen < 1 || k.Phases < 1 {
		return nil
	}
	trace := make([]Instr, 0, k.Chains*k.ChainLen*k.Phases)
	// Location ids: one running value per chain (register file), plus a
	// private memory cell per chain for load/store flavor.
	regOf := func(chain int) int32 { return int32(1 + chain) }
	var quota [NumOpTypes]float64
	typeFor := func() OpType {
		// Largest-remainder selection keeps realized counts within one
		// of the exact proportions.
		best := OpType(0)
		for t := OpType(0); t < NumOpTypes; t++ {
			quota[t] += k.Mix[t] / mixTotal
			if quota[t] > quota[best] {
				best = t
			}
		}
		quota[best]--
		return best
	}
	for phase := 0; phase < k.Phases; phase++ {
		active := k.Chains
		if phase%2 == 1 {
			active = int(float64(k.Chains) * k.NarrowFrac)
			if active < 1 {
				active = 1
			}
		}
		// Emit level by level so same-cycle operations of different
		// chains are adjacent in the trace (the order spy would see from
		// an unrolled inner loop).
		for step := 0; step < k.ChainLen; step++ {
			for c := 0; c < active; c++ {
				r := regOf(c)
				trace = append(trace, Instr{Type: typeFor(), Src1: r, Dst: r})
			}
		}
	}
	return trace
}

// NASKernels returns the eight synthetic NAS-like workloads with chain
// widths and mixes shaped to the report's Table 7 centroids.
func NASKernels() []KernelSpec {
	mk := func(name string, scale float64, intops, memops, fpops, ctlops, brops float64, phases int, narrow float64) KernelSpec {
		total := intops + memops + fpops + ctlops + brops
		chains := int(total*scale + 0.5)
		if chains < 2 {
			chains = 2
		}
		return KernelSpec{
			Name:       name,
			Chains:     chains,
			ChainLen:   12,
			Phases:     phases,
			NarrowFrac: narrow,
			Mix:        [NumOpTypes]float64{intops, memops, fpops, ctlops, brops},
		}
	}
	return []KernelSpec{
		// name, width scale, Intops, Memops, FPops, Ctlops, Branchops
		mk("embar", 1, 81.3, 59.5, 14.4, 0.001, 37.3, 4, 0.25),
		mk("mgrid", 1, 33.9, 19.5, 0.80, 0.05, 9.2, 2, 0.9),
		mk("cgm", 1, 4.48, 3.80, 0.84, 0.001, 0.85, 4, 0.4),
		mk("fftpde", 1, 184, 128, 33.5, 10.9, 57.8, 4, 0.5),
		mk("buk", 1, 2.43, 1.74, 0.45, 0.001, 0.66, 2, 0.8),
		mk("applu", 1, 1032, 559, 69.8, 0.05, 414, 2, 0.85),
		mk("appsp", 1, 8261, 5263, 604.8, 26.2, 3504, 2, 0.82),
		mk("appbt", 1, 2789, 848, 49.7, 4.3, 1065, 2, 0.95),
	}
}

// ExampleSuite returns the five small workloads of the report's Section
// 4.1 comparison study, expressed directly as parallel-instruction
// streams (each row of the tables is one unique PI with a repeat count).
func ExampleSuite() map[string][]PI {
	expand := func(rows [][4]float64) []PI {
		var out []PI
		for _, r := range rows {
			for i := 0; i < int(r[0]); i++ {
				// Columns: #PIs, MEM, FP, INT.
				out = append(out, PI{IntOp: r[3], MemOp: r[1], FPOp: r[2]})
			}
		}
		return out
	}
	return map[string][]PI{
		"WL1": expand([][4]float64{{5, 1, 0, 1}, {3, 0, 1, 0}, {7, 1, 0, 0}, {2, 0, 0, 1}}),
		"WL2": expand([][4]float64{{2, 0, 1, 1}, {3, 1, 1, 0}, {7, 1, 0, 1}, {5, 1, 1, 1}}),
		"WL3": expand([][4]float64{{5, 3, 2, 1}, {7, 4, 3, 0}}),
		"WL4": expand([][4]float64{{3, 4, 3, 2}, {7, 3, 4, 2}}),
		"WL5": expand([][4]float64{{4, 1, 1, 1}, {6, 2, 1, 0}, {5, 1, 0, 1}}),
	}
}
