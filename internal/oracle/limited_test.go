package oracle

import "testing"

func independentTrace(n int, tp OpType) []Instr {
	trace := make([]Instr, n)
	for i := range trace {
		trace[i] = Instr{Type: tp, Dst: int32(i + 1)}
	}
	return trace
}

func TestScheduleTypedUnlimitedEqualsOracle(t *testing.T) {
	spec := NASKernels()[2] // cgm
	trace := spec.Generate()
	oraclePIs := Schedule(trace)
	typed := ScheduleTyped(trace, FULimits{})
	if len(typed) != len(oraclePIs) {
		t.Fatalf("unlimited typed CPL %d != oracle %d", len(typed), len(oraclePIs))
	}
	for i := range typed {
		if typed[i] != oraclePIs[i] {
			t.Fatalf("cycle %d differs: %v vs %v", i, typed[i], oraclePIs[i])
		}
	}
}

func TestScheduleTypedEnforcesLimits(t *testing.T) {
	// 10 independent FP ops with a 3-wide FP unit need ceil(10/3) = 4
	// cycles.
	trace := independentTrace(10, FPOp)
	var limits FULimits
	limits[FPOp] = 3
	pis := ScheduleTyped(trace, limits)
	if len(pis) != 4 {
		t.Fatalf("CPL = %d, want 4", len(pis))
	}
	for i, p := range pis {
		if p[FPOp] > 3 {
			t.Errorf("cycle %d issued %g FP ops", i, p[FPOp])
		}
	}
}

func TestScheduleTypedOnlyLimitsNamedTypes(t *testing.T) {
	// Int ops remain unlimited under the Cray Y-MP configuration.
	trace := independentTrace(50, IntOp)
	pis := ScheduleTyped(trace, CrayYMPLimits())
	if len(pis) != 1 {
		t.Errorf("50 independent int ops took %d cycles under FP/MEM limits", len(pis))
	}
}

func TestExecutedParallelismArchitectureDependence(t *testing.T) {
	// The report's core argument: executed-parallelism profiles change
	// with the machine, so matrices built from them are
	// architecture-dependent. The same trace on two machine configs
	// yields different profiles; the oracle profile is invariant.
	trace := independentTrace(30, FPOp)
	narrow := ScheduleTyped(trace, FULimits{FPOp: 1})
	wide := ScheduleTyped(trace, FULimits{FPOp: 10})
	if len(narrow) == len(wide) {
		t.Error("executed parallelism identical across machine configurations")
	}
	if len(Schedule(trace)) != 1 {
		t.Error("oracle schedule depends on nothing but dependencies")
	}
}

func TestScheduleTypedRespectsDependencies(t *testing.T) {
	trace := []Instr{
		{Type: FPOp, Dst: 1},
		{Type: FPOp, Src1: 1, Dst: 2},
		{Type: FPOp, Src1: 2, Dst: 3},
	}
	pis := ScheduleTyped(trace, FULimits{FPOp: 8})
	if len(pis) != 3 {
		t.Errorf("dependence chain compressed: CPL = %d", len(pis))
	}
}

func TestScheduleWindowedLimits(t *testing.T) {
	trace := independentTrace(40, IntOp)
	// Window 10: instruction 39 cannot issue before cycle 3.
	pis := ScheduleWindowed(trace, 10)
	if len(pis) != 4 {
		t.Fatalf("CPL = %d, want 4", len(pis))
	}
	// Infinite-ish window equals the oracle for this trace.
	wide := ScheduleWindowed(trace, 1<<20)
	if len(wide) != 1 {
		t.Errorf("wide window CPL = %d", len(wide))
	}
}

func TestScheduleWindowedMonotoneInWindow(t *testing.T) {
	trace := NASKernels()[0].Generate()
	oracleCPL := len(Schedule(trace))
	last := 1 << 30
	for _, w := range []int{8, 64, 512, 1 << 20} {
		cpl := len(ScheduleWindowed(trace, w))
		if cpl > last {
			t.Errorf("CPL grew when window widened to %d", w)
		}
		if cpl < oracleCPL {
			t.Errorf("window %d beat the oracle: %d < %d", w, cpl, oracleCPL)
		}
		last = cpl
	}
}

func TestScheduleWindowedPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for window 0")
		}
	}()
	ScheduleWindowed(nil, 0)
}

func TestCrayYMPLimits(t *testing.T) {
	l := CrayYMPLimits()
	if l[FPOp] != 3 || l[MemOp] != 3 || l[IntOp] != 0 {
		t.Errorf("limits = %v", l)
	}
}

func TestTypedOpsConserved(t *testing.T) {
	// Scheduling never loses or duplicates operations.
	trace := NASKernels()[4].Generate() // buk
	for _, pis := range [][]PI{
		Schedule(trace),
		ScheduleTyped(trace, CrayYMPLimits()),
		ScheduleWindowed(trace, 32),
	} {
		var total float64
		for _, p := range pis {
			total += p.Total()
		}
		if int(total) != len(trace) {
			t.Errorf("ops not conserved: %g vs %d", total, len(trace))
		}
	}
}
