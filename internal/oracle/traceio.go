package oracle

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Trace serialization. The 1990s pipeline collected spy traces to files
// and analyzed them offline with SITA; this compact binary format plays
// the same role: generate once (expensive for big kernels), schedule and
// re-analyze many times.
//
// Format: magic "WTRC", uint32 version, uint64 count, then per
// instruction one byte of type and three zigzag-varint location ids.

const (
	traceMagic   = "WTRC"
	traceVersion = 1
)

// WriteTrace encodes a trace to w.
func WriteTrace(w io.Writer, trace []Instr) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], traceVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(trace)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen32]byte
	for _, in := range trace {
		if in.Type < 0 || in.Type >= NumOpTypes {
			return fmt.Errorf("oracle: invalid op type %d", in.Type)
		}
		if err := bw.WriteByte(byte(in.Type)); err != nil {
			return err
		}
		for _, v := range [3]int32{in.Src1, in.Src2, in.Dst} {
			n := binary.PutUvarint(buf[:], uint64(uint32(v)))
			if _, err := bw.Write(buf[:n]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadTrace decodes a trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]Instr, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("oracle: short trace header: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("oracle: bad trace magic %q", magic)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("oracle: short trace header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:4]); v != traceVersion {
		return nil, fmt.Errorf("oracle: unsupported trace version %d", v)
	}
	count := binary.LittleEndian.Uint64(hdr[4:12])
	const maxTrace = 1 << 30
	if count > maxTrace {
		return nil, fmt.Errorf("oracle: implausible trace length %d", count)
	}
	trace := make([]Instr, count)
	for i := range trace {
		tb, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("oracle: truncated trace at instruction %d: %w", i, err)
		}
		if OpType(tb) >= NumOpTypes {
			return nil, fmt.Errorf("oracle: invalid op type %d at instruction %d", tb, i)
		}
		trace[i].Type = OpType(tb)
		var vals [3]int32
		for j := range vals {
			u, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("oracle: truncated trace at instruction %d: %w", i, err)
			}
			vals[j] = int32(uint32(u))
		}
		trace[i].Src1, trace[i].Src2, trace[i].Dst = vals[0], vals[1], vals[2]
	}
	return trace, nil
}

// SaveTrace writes a trace to the named file.
func SaveTrace(path string, trace []Instr) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, trace); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadTrace reads a trace from the named file.
func LoadTrace(path string) ([]Instr, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}
