package oracle

import "fmt"

// Architecture-dependent scheduling models. Appendix C's criticism of the
// parallelism-matrix technique [18] is that it measured *executed*
// parallelism on a specific machine (a Cray Y-MP simulator with three
// floating-point and three memory functional units), making the workload
// representation architecture-dependent. ScheduleTyped reproduces that
// executed-parallelism model: per-cycle issue limits per operation type.
// ScheduleWindowed models a finite reorder window, the other classical
// restriction ILP studies impose between the oracle and real machines.

// FULimits caps the per-cycle issue width of each operation type; zero
// means unlimited for that type.
type FULimits [NumOpTypes]int

// CrayYMPLimits returns the functional-unit configuration of the
// parallelism-matrix study's target: three floating-point units and
// three memory ports (two load, one store), with other types unlimited.
func CrayYMPLimits() FULimits {
	var l FULimits
	l[FPOp] = 3
	l[MemOp] = 3
	return l
}

// ScheduleTyped list-schedules the trace with per-type issue limits,
// returning the executed parallel instructions (one PI per cycle). This
// is the architecture-dependent profile whose matrices the report's
// baseline technique compares.
func ScheduleTyped(trace []Instr, limits FULimits) []PI {
	ready := make(map[int32]int)
	var pis []PI
	for _, in := range trace {
		earliest := 0
		if in.Src1 != 0 {
			if l, ok := ready[in.Src1]; ok && l > earliest {
				earliest = l
			}
		}
		if in.Src2 != 0 {
			if l, ok := ready[in.Src2]; ok && l > earliest {
				earliest = l
			}
		}
		slot := earliest
		limit := limits[in.Type]
		for {
			for len(pis) <= slot {
				pis = append(pis, PI{})
			}
			if limit == 0 || int(pis[slot][in.Type]) < limit {
				break
			}
			slot++
		}
		pis[slot][in.Type]++
		if in.Dst != 0 {
			ready[in.Dst] = slot + 1
		}
	}
	return pis
}

// ScheduleWindowed schedules with a finite reorder window: an instruction
// may issue no earlier than ⌊index/window⌋ cycles into the schedule
// (instructions more than `window` positions ahead in program order
// cannot be hoisted past the current fetch frontier). window must be
// positive. The oracle is the window → ∞ limit.
func ScheduleWindowed(trace []Instr, window int) []PI {
	if window < 1 {
		panic(fmt.Sprintf("oracle: window = %d", window))
	}
	ready := make(map[int32]int)
	var pis []PI
	for idx, in := range trace {
		earliest := idx / window // fetch-frontier constraint
		if in.Src1 != 0 {
			if l, ok := ready[in.Src1]; ok && l > earliest {
				earliest = l
			}
		}
		if in.Src2 != 0 {
			if l, ok := ready[in.Src2]; ok && l > earliest {
				earliest = l
			}
		}
		for len(pis) <= earliest {
			pis = append(pis, PI{})
		}
		pis[earliest][in.Type]++
		if in.Dst != 0 {
			ready[in.Dst] = earliest + 1
		}
	}
	return pis
}
