package oracle

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	trace := NASKernels()[2].Generate() // cgm
	var buf bytes.Buffer
	if err := WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(trace) {
		t.Fatalf("length %d != %d", len(back), len(trace))
	}
	for i := range trace {
		if trace[i] != back[i] {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, trace[i], back[i])
		}
	}
}

func TestTraceRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Errorf("empty trace read back %d instructions", len(back))
	}
}

func TestTraceAnalysisSurvivesSerialization(t *testing.T) {
	// The offline pipeline: schedules from a reloaded trace match the
	// in-memory ones exactly.
	trace := NASKernels()[4].Generate() // buk
	var buf bytes.Buffer
	if err := WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := Summarize(Schedule(trace))
	b := Summarize(Schedule(back))
	if a != b {
		t.Errorf("schedule stats differ after serialization: %+v vs %+v", a, b)
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	trace := []Instr{
		{Type: IntOp, Dst: 1},
		{Type: FPOp, Src1: 1, Src2: 1, Dst: 2},
		{Type: MemOp, Src1: 2, Dst: -5}, // negative ids survive zigzag-free encoding
	}
	path := t.TempDir() + "/k.trc"
	if err := SaveTrace(path, trace); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range trace {
		if trace[i] != back[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
	if _, err := LoadTrace(path + ".missing"); err == nil {
		t.Error("missing file loaded")
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"bad magic", "XXXX\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"},
		{"bad version", "WTRC\x09\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"},
		{"truncated body", "WTRC\x01\x00\x00\x00\x05\x00\x00\x00\x00\x00\x00\x00\x00"},
		{"bad op type", "WTRC\x01\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00\xff\x00\x00\x00"},
	}
	for _, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c.data)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestWriteTraceRejectsInvalidType(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, []Instr{{Type: NumOpTypes}}); err == nil {
		t.Error("invalid op type written")
	}
}
