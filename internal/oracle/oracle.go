// Package oracle implements Appendix C's idealized execution model: a
// dynamic instruction trace is scheduled onto the "oracle" architecture —
// unlimited processors, unit latency, and only true flow dependencies
// respected — packing the sequential stream into parallel instructions
// (PIs). It stands in for the SITA trace scheduler over SPARC spy traces
// (see DESIGN.md: the traces themselves are synthesized by
// wavelethpc/internal/oracle kernels with NAS-like operation mixes and
// dependence structure, since the 1990s binaries and tracer are gone).
package oracle

import "fmt"

// OpType is the instruction category. The five categories follow the
// report's SPARC breakdown.
type OpType int

const (
	// IntOp is arithmetic/logic/shift.
	IntOp OpType = iota
	// MemOp is load/store.
	MemOp
	// FPOp is floating-point operate.
	FPOp
	// CtlOp is read/write control register.
	CtlOp
	// BranchOp is control transfer.
	BranchOp
	// NumOpTypes is the category count.
	NumOpTypes
)

// String returns the category name used in the report's tables.
func (o OpType) String() string {
	switch o {
	case IntOp:
		return "Intops"
	case MemOp:
		return "Memops"
	case FPOp:
		return "FPops"
	case CtlOp:
		return "Controlops"
	case BranchOp:
		return "Branchops"
	default:
		return fmt.Sprintf("OpType(%d)", int(o))
	}
}

// Instr is one dynamic instruction: a typed operation reading up to two
// locations and writing one. Locations form a unified id space covering
// registers and memory cells; location 0 means "none".
type Instr struct {
	Type       OpType
	Src1, Src2 int32
	Dst        int32
}

// PI is one parallel instruction: how many operations of each type issue
// together in one oracle cycle.
type PI [NumOpTypes]float64

// Total returns the operation count of the parallel instruction.
func (p PI) Total() float64 {
	var s float64
	for _, v := range p {
		s += v
	}
	return s
}

// Schedule packs a trace onto the oracle: each instruction executes one
// cycle after its latest producer, and the returned slice holds one PI
// per cycle. The schedule respects only read-after-write dependencies —
// "an Oracle is present to guide us at every conditional jump ... and
// resolving all ambiguous memory references".
func Schedule(trace []Instr) []PI {
	ready := make(map[int32]int)
	var pis []PI
	for _, in := range trace {
		lvl := 0
		if in.Src1 != 0 {
			if l, ok := ready[in.Src1]; ok && l > lvl {
				lvl = l
			}
		}
		if in.Src2 != 0 {
			if l, ok := ready[in.Src2]; ok && l > lvl {
				lvl = l
			}
		}
		// Executes at cycle lvl (0-based), result ready for cycle lvl+1.
		for len(pis) <= lvl {
			pis = append(pis, PI{})
		}
		pis[lvl][in.Type]++
		if in.Dst != 0 {
			ready[in.Dst] = lvl + 1
		}
	}
	return pis
}

// Stats summarizes a schedule.
type Stats struct {
	// Ops is the total dynamic operation count.
	Ops float64
	// CPL is the critical path length in cycles (number of PIs).
	CPL int
	// AvgParallelism is Ops / CPL.
	AvgParallelism float64
}

// Summarize computes schedule statistics.
func Summarize(pis []PI) Stats {
	var s Stats
	s.CPL = len(pis)
	for _, p := range pis {
		s.Ops += p.Total()
	}
	if s.CPL > 0 {
		s.AvgParallelism = s.Ops / float64(s.CPL)
	}
	return s
}

// ScheduleLimited list-schedules the trace with at most width operations
// per cycle (unit latency, in trace order — greedy first-fit), returning
// the finite-width cycle count and the average operation delay: "the
// average number of parallel instructions by which each operation is
// delayed before it can be executed".
func ScheduleLimited(trace []Instr, width int) (cycles int, avgDelay float64) {
	if width < 1 {
		panic(fmt.Sprintf("oracle: width = %d", width))
	}
	ready := make(map[int32]int)
	load := make([]int, 0, 1024)
	var totalDelay float64
	for _, in := range trace {
		earliest := 0
		if in.Src1 != 0 {
			if l, ok := ready[in.Src1]; ok && l > earliest {
				earliest = l
			}
		}
		if in.Src2 != 0 {
			if l, ok := ready[in.Src2]; ok && l > earliest {
				earliest = l
			}
		}
		slot := earliest
		for {
			for len(load) <= slot {
				load = append(load, 0)
			}
			if load[slot] < width {
				break
			}
			slot++
		}
		load[slot]++
		totalDelay += float64(slot - earliest)
		if in.Dst != 0 {
			ready[in.Dst] = slot + 1
		}
		if slot+1 > cycles {
			cycles = slot + 1
		}
	}
	if len(trace) > 0 {
		avgDelay = totalDelay / float64(len(trace))
	}
	return cycles, avgDelay
}

// Smoothability is the report's metric: the ratio of the unrestricted
// (oracle) execution time to the execution time with the processor count
// limited to the average degree of parallelism. Values near 1 mean the
// parallelism profile is smooth enough for centroids to represent the
// workload faithfully.
func Smoothability(trace []Instr) (smooth float64, s Stats, limitedCycles int, avgDelay float64) {
	pis := Schedule(trace)
	s = Summarize(pis)
	width := int(s.AvgParallelism)
	if width < 1 {
		width = 1
	}
	limitedCycles, avgDelay = ScheduleLimited(trace, width)
	if limitedCycles > 0 {
		smooth = float64(s.CPL) / float64(limitedCycles)
	}
	return smooth, s, limitedCycles, avgDelay
}
