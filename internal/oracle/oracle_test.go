package oracle

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOpTypeStrings(t *testing.T) {
	want := map[OpType]string{IntOp: "Intops", MemOp: "Memops", FPOp: "FPops", CtlOp: "Controlops", BranchOp: "Branchops"}
	for k, v := range want {
		if k.String() != v {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}

func TestScheduleIndependentOpsPackTogether(t *testing.T) {
	trace := []Instr{
		{Type: IntOp, Dst: 1},
		{Type: FPOp, Dst: 2},
		{Type: MemOp, Dst: 3},
	}
	pis := Schedule(trace)
	if len(pis) != 1 {
		t.Fatalf("CPL = %d, want 1", len(pis))
	}
	if pis[0][IntOp] != 1 || pis[0][FPOp] != 1 || pis[0][MemOp] != 1 {
		t.Errorf("PI = %v", pis[0])
	}
}

func TestScheduleSerialChain(t *testing.T) {
	trace := []Instr{
		{Type: IntOp, Dst: 1},
		{Type: IntOp, Src1: 1, Dst: 2},
		{Type: IntOp, Src1: 2, Dst: 3},
	}
	pis := Schedule(trace)
	if len(pis) != 3 {
		t.Fatalf("CPL = %d, want 3", len(pis))
	}
	for i, p := range pis {
		if p.Total() != 1 {
			t.Errorf("level %d has %g ops", i, p.Total())
		}
	}
}

func TestScheduleDiamond(t *testing.T) {
	// a; b<-a; c<-a; d<-b,c  => levels 1,2,2,3.
	trace := []Instr{
		{Type: IntOp, Dst: 1},
		{Type: FPOp, Src1: 1, Dst: 2},
		{Type: MemOp, Src1: 1, Dst: 3},
		{Type: IntOp, Src1: 2, Src2: 3, Dst: 4},
	}
	pis := Schedule(trace)
	if len(pis) != 3 {
		t.Fatalf("CPL = %d, want 3", len(pis))
	}
	if pis[1][FPOp] != 1 || pis[1][MemOp] != 1 {
		t.Errorf("level 1 = %v", pis[1])
	}
}

func TestScheduleWAWIgnored(t *testing.T) {
	// The oracle respects only true (flow) dependencies: two writes to
	// the same location with no reads pack into one cycle.
	trace := []Instr{
		{Type: IntOp, Dst: 1},
		{Type: IntOp, Dst: 1},
	}
	if pis := Schedule(trace); len(pis) != 1 {
		t.Errorf("WAW serialized: CPL = %d", len(pis))
	}
}

func TestSummarize(t *testing.T) {
	pis := []PI{{1, 2, 0, 0, 1}, {0, 0, 3, 0, 0}}
	s := Summarize(pis)
	if s.Ops != 7 || s.CPL != 2 || s.AvgParallelism != 3.5 {
		t.Errorf("stats = %+v", s)
	}
	empty := Summarize(nil)
	if empty.AvgParallelism != 0 {
		t.Error("empty workload parallelism != 0")
	}
}

func TestScheduleLimitedWidth1IsSequential(t *testing.T) {
	trace := make([]Instr, 10)
	for i := range trace {
		trace[i] = Instr{Type: IntOp, Dst: int32(i + 1)}
	}
	cycles, delay := ScheduleLimited(trace, 1)
	if cycles != 10 {
		t.Errorf("width-1 cycles = %d, want 10", cycles)
	}
	if delay <= 0 {
		t.Error("expected queueing delay at width 1")
	}
}

func TestScheduleLimitedWideEqualsOracle(t *testing.T) {
	spec := KernelSpec{Name: "x", Chains: 8, ChainLen: 5, Phases: 2, NarrowFrac: 0.5, Mix: [NumOpTypes]float64{1, 1, 1, 0, 1}}
	trace := spec.Generate()
	pis := Schedule(trace)
	cycles, delay := ScheduleLimited(trace, 1<<20)
	if cycles != len(pis) {
		t.Errorf("unlimited-width list schedule %d cycles != oracle %d", cycles, len(pis))
	}
	if delay != 0 {
		t.Errorf("delay = %g with unlimited width", delay)
	}
}

func TestScheduleLimitedPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for width 0")
		}
	}()
	ScheduleLimited(nil, 0)
}

func TestSmoothabilityBounds(t *testing.T) {
	for _, spec := range NASKernels()[:4] {
		sm, stats, limited, delay := Smoothability(spec.Generate())
		if sm <= 0 || sm > 1+1e-12 {
			t.Errorf("%s: smoothability %g outside (0,1]", spec.Name, sm)
		}
		if limited < stats.CPL {
			t.Errorf("%s: limited schedule shorter than oracle", spec.Name)
		}
		if delay < 0 {
			t.Errorf("%s: negative delay", spec.Name)
		}
	}
}

func TestPerfectlySmoothWorkload(t *testing.T) {
	// Constant-width independent chains have smoothability exactly 1.
	spec := KernelSpec{Name: "flat", Chains: 10, ChainLen: 6, Phases: 1, NarrowFrac: 1, Mix: [NumOpTypes]float64{1, 0, 0, 0, 0}}
	sm, stats, _, _ := Smoothability(spec.Generate())
	if math.Abs(sm-1) > 1e-12 {
		t.Errorf("flat workload smoothability = %g", sm)
	}
	if stats.AvgParallelism != 10 {
		t.Errorf("avg parallelism = %g, want 10", stats.AvgParallelism)
	}
}

func TestGenerateDeterministicAndMixExact(t *testing.T) {
	spec := NASKernels()[0]
	a := spec.Generate()
	b := spec.Generate()
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic trace")
		}
	}
	// Realized mix tracks the spec to within 1%.
	var counts [NumOpTypes]float64
	for _, in := range a {
		counts[in.Type]++
	}
	var mixTotal float64
	for _, v := range spec.Mix {
		mixTotal += v
	}
	for tt := OpType(0); tt < NumOpTypes; tt++ {
		want := spec.Mix[tt] / mixTotal
		got := counts[tt] / float64(len(a))
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%v: realized %g, want %g", tt, got, want)
		}
	}
}

func TestGenerateEmptyCases(t *testing.T) {
	if tr := (KernelSpec{}).Generate(); tr != nil {
		t.Error("zero spec generated a trace")
	}
}

func TestNASKernelWidthsOrdered(t *testing.T) {
	// The report's Table 7 ordering of average parallelism:
	// appsp >> appbt > applu > fftpde > embar > mgrid > cgm > buk.
	want := []string{"appsp", "appbt", "applu", "fftpde", "embar", "mgrid", "cgm", "buk"}
	par := map[string]float64{}
	for _, spec := range NASKernels() {
		s := Summarize(Schedule(spec.Generate()))
		par[spec.Name] = s.AvgParallelism
	}
	for i := 0; i+1 < len(want); i++ {
		if par[want[i]] <= par[want[i+1]] {
			t.Errorf("parallelism ordering violated: %s (%g) <= %s (%g)",
				want[i], par[want[i]], want[i+1], par[want[i+1]])
		}
	}
}

func TestExampleSuiteShapes(t *testing.T) {
	suite := ExampleSuite()
	wantCounts := map[string]int{"WL1": 17, "WL2": 17, "WL3": 12, "WL4": 10, "WL5": 15}
	for name, pis := range suite {
		if len(pis) != wantCounts[name] {
			t.Errorf("%s: %d PIs, want %d", name, len(pis), wantCounts[name])
		}
	}
	// WL1's first unique row: 5 instances of (MEM=1, INT=1).
	wl1 := suite["WL1"]
	if wl1[0][MemOp] != 1 || wl1[0][IntOp] != 1 || wl1[0][FPOp] != 0 {
		t.Errorf("WL1[0] = %v", wl1[0])
	}
}

func TestPITotalProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		p := PI{float64(a), float64(b), float64(c)}
		return p.Total() == float64(a)+float64(b)+float64(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
