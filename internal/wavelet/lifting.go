package wavelet

import (
	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
	"wavelethpc/internal/wavelet/kernel"
)

// Tolerance-gated lifting dispatch. The transform has three tiers:
//
//	reference            unsupported bank/extension combinations
//	fused convolution    the default — bit-identical to reference (§11)
//	lifting              opt-in via a drift tolerance, periodic only
//
// The lifting tier halves the arithmetic by running the bank's factored
// predict/update scheme (internal/filter/lifting.go) as fused in-place
// sweeps (internal/wavelet/kernel/lifting.go). Because lifting reorders
// floating-point accumulation, it is never selected implicitly: callers
// must state the drift they will accept, and the tier engages only when
// that tolerance covers the scheme's advertised Eps. A tolerance of 0 —
// or any combination the lifting tier cannot serve exactly (non-periodic
// extension, a bank whose factorization degenerates) — falls back to the
// convolution tier, keeping every golden digest bit-identical.

// LiftingFor returns the lifting scheme the tolerance-gated tier would
// use for the combination, or nil when the convolution (or reference)
// tier must serve it: tol must exceed 0 and cover the scheme's Eps, the
// extension must be Periodic (the polyphase factorization is an identity
// of circular convolution only), and the bank must factor. NaN and
// negative tolerances never dispatch lifting.
func LiftingFor(bank *filter.Bank, ext filter.Extension, tol float64) *filter.LiftingScheme {
	if !(tol > 0) || ext != filter.Periodic {
		return nil
	}
	sch, err := kernel.LiftingScheme(bank)
	if err != nil || sch.Eps > tol {
		return nil
	}
	return sch
}

// DecomposeTol is Decompose with an explicit drift tolerance: when the
// bank, extension, and tolerance admit the lifting tier, the transform
// runs through the fused lifting sweeps and may differ from the
// reference by at most tol (relative, enforced by the drift-bound
// property suite); otherwise it is exactly Decompose, bit-identical
// default included. DecomposeTol(im, bank, ext, levels, 0) ≡
// Decompose(im, bank, ext, levels).
func DecomposeTol(im *image.Image, bank *filter.Bank, ext filter.Extension, levels int, tol float64) (*Pyramid, error) {
	sch := LiftingFor(bank, ext, tol)
	if sch == nil {
		return Decompose(im, bank, ext, levels)
	}
	if err := CheckDecomposable(im.Rows, im.Cols, levels); err != nil {
		return nil, err
	}
	p := NewPyramid(im.Rows, im.Cols, bank, ext, levels)
	ar := kernel.GetArena()
	decomposeLifting(p, im, ar, sch)
	kernel.PutArena(ar)
	return p, nil
}

// decomposeLifting fills the preallocated pyramid from im through the
// lifting tier: per level, one fused row sweep scatters the polyphase
// outputs straight into the four subband images (no intermediate L/H
// scratch at all — only the arena's LL ping-pong chain is used), then
// two in-place column sweeps finish the level.
//
//wavelint:hotpath
func decomposeLifting(p *Pyramid, im *image.Image, ar *kernel.Arena, sch *filter.LiftingScheme) {
	levels := len(p.Levels)
	cur := im
	for l := 0; l < levels; l++ {
		rows, cols := cur.Rows, cur.Cols
		d := &p.Levels[levels-1-l]
		ll := p.Approx
		if l < levels-1 {
			ll = ar.LL(l%2, rows/2, cols/2)
		}
		kernel.LiftRowsRange(ll, d.LH, d.HL, d.HH, cur, sch, 0, rows)
		kernel.LiftColsRange(ll, d.LH, sch, 0, cols/2)
		kernel.LiftColsRange(d.HL, d.HH, sch, 0, cols/2)
		cur = ll
	}
}

// NewDecomposerTol is NewDecomposer with a drift tolerance: the lifting
// scheme is resolved once here (factorization is cached per bank), so
// the steady-state Decompose calls stay allocation-free. With tol 0 the
// decomposer is exactly NewDecomposer's bit-identical convolution tier.
//
//wavelint:coldpath constructor, resolves the factorization once
func NewDecomposerTol(bank *filter.Bank, ext filter.Extension, levels int, tol float64) *Decomposer {
	d := NewDecomposer(bank, ext, levels)
	d.sch = LiftingFor(bank, ext, tol)
	return d
}
