package wavelet

import (
	"math"
	"testing"

	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
)

// Drift-bound verification harness for the lifting tier. Lifting
// reorders floating-point accumulation, so the tier's whole contract is
// quantitative: for every combination it serves, the output must stay
// within the scheme's advertised Eps of the reference transform — and
// for every combination it does not serve, the output must remain
// bit-identical to the convolution tier. Both halves are enforced here
// across bank × extension × shape × level on seeded noise and
// natural-image fixtures.

// pyramidDrift returns the max-abs and L2 drift of got vs ref, both
// relative: max-abs against the largest reference coefficient, L2
// against the reference energy, across the approximation and every
// detail band.
func pyramidDrift(ref, got *Pyramid) (rel, relL2 float64) {
	var maxDiff, maxRef, sumDiff2, sumRef2 float64
	accum := func(a, b *image.Image) {
		for r := 0; r < a.Rows; r++ {
			ra, rb := a.Row(r), b.Row(r)
			for c := range ra {
				d := math.Abs(ra[c] - rb[c])
				if d > maxDiff {
					maxDiff = d
				}
				if ar := math.Abs(ra[c]); ar > maxRef {
					maxRef = ar
				}
				sumDiff2 += d * d
				sumRef2 += ra[c] * ra[c]
			}
		}
	}
	accum(ref.Approx, got.Approx)
	for i := range ref.Levels {
		accum(ref.Levels[i].LH, got.Levels[i].LH)
		accum(ref.Levels[i].HL, got.Levels[i].HL)
		accum(ref.Levels[i].HH, got.Levels[i].HH)
	}
	if maxRef == 0 {
		maxRef = 1
	}
	if sumRef2 == 0 {
		sumRef2 = 1
	}
	return maxDiff / maxRef, math.Sqrt(sumDiff2 / sumRef2)
}

// liftingScheme resolves the lifting scheme the dispatcher would use
// when offered a tolerance covering the bank's own Eps, or nil when the
// combination never dispatches lifting.
func liftingScheme(b *filter.Bank, ext filter.Extension) *filter.LiftingScheme {
	return LiftingFor(b, ext, 1)
}

// TestLiftingDriftBounds is the drift-bound property suite: for every
// catalog bank, extension, odd/even-ish shape, and depth 1–5, a
// decomposition requested at exactly the bank's advertised Eps either
// (a) dispatches lifting and stays within Eps of DecomposeReference in
// both max-abs and relative-L2 drift, or (b) cannot be served by the
// lifting tier and is then bit-identical to the convolution tier.
func TestLiftingDriftBounds(t *testing.T) {
	shapes := [][2]int{{32, 96}, {64, 64}, {160, 32}}
	for _, name := range filter.Names() {
		b, err := filter.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, ext := range allExtensions() {
			sch := liftingScheme(b, ext)
			for _, sh := range shapes {
				im := image.Landsat(sh[0], sh[1], 7)
				for levels := 1; levels <= 5; levels++ {
					if CheckDecomposable(sh[0], sh[1], levels) != nil {
						continue
					}
					eps := 1e-12 // below every advertised Eps: never dispatches
					if sch != nil {
						eps = sch.Eps
					}
					got, err := DecomposeTol(im, b, ext, levels, eps)
					if err != nil {
						t.Fatal(err)
					}
					label := name + "/" + ext.String()
					if sch == nil {
						conv, err := Decompose(im, b, ext, levels)
						if err != nil {
							t.Fatal(err)
						}
						requirePyramidsBitIdentical(t, label+"/no-dispatch", conv, got)
						continue
					}
					ref, err := DecomposeReference(im, b, ext, levels)
					if err != nil {
						t.Fatal(err)
					}
					rel, relL2 := pyramidDrift(ref, got)
					if rel > sch.Eps || relL2 > sch.Eps {
						t.Errorf("%s %dx%d L%d: drift max-abs %.3g, L2 %.3g exceeds advertised eps %.3g",
							label, sh[0], sh[1], levels, rel, relL2, sch.Eps)
					}
				}
			}
		}
	}
}

// TestLiftingBelowEpsStaysOnConvolution: a positive tolerance smaller
// than the scheme's Eps must not dispatch lifting — the convolution
// tier serves it bit-identically. This pins the dispatch inequality
// (tol >= Eps), not just the tol = 0 case.
func TestLiftingBelowEpsStaysOnConvolution(t *testing.T) {
	b := filter.Daubechies8()
	sch := liftingScheme(b, filter.Periodic)
	if sch == nil {
		t.Fatal("db8 should admit lifting under periodic extension")
	}
	im := image.Landsat(64, 64, 3)
	conv, err := Decompose(im, b, filter.Periodic, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecomposeTol(im, b, filter.Periodic, 3, sch.Eps/2)
	if err != nil {
		t.Fatal(err)
	}
	requirePyramidsBitIdentical(t, "below-eps", conv, got)
}

// TestLiftingStatisticalEquivalence is the statistical gate: across
// seeded-noise and natural-image trials, the lifted tier's relative-L2
// drift must stay within the advertised Eps on every trial, with the
// worst case recorded. This is the CI evidence that Eps is a real bound,
// not a lucky fixture.
func TestLiftingStatisticalEquivalence(t *testing.T) {
	trials := 20
	for _, name := range []string{"haar", "cdf5/3", "db8", "bior4.4", "sym6"} {
		b, err := filter.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sch := liftingScheme(b, filter.Periodic)
		if sch == nil {
			t.Fatalf("%s should admit lifting under periodic extension", name)
		}
		var worstAbs, worstL2, sumL2 float64
		for trial := 0; trial < trials; trial++ {
			im := image.Landsat(64, 96, uint64(1000+trial))
			if trial%2 == 1 {
				// Alternate with zero-mean noise around a ramp so both
				// natural-image and noise statistics are covered.
				for r := 0; r < im.Rows; r++ {
					row := im.Row(r)
					for c := range row {
						row[c] = row[c] - 128 + float64(r-c)
					}
				}
			}
			ref, err := DecomposeReference(im, b, filter.Periodic, 3)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecomposeTol(im, b, filter.Periodic, 3, sch.Eps)
			if err != nil {
				t.Fatal(err)
			}
			rel, relL2 := pyramidDrift(ref, got)
			worstAbs = math.Max(worstAbs, rel)
			worstL2 = math.Max(worstL2, relL2)
			sumL2 += relL2
		}
		if worstAbs > sch.Eps || worstL2 > sch.Eps {
			t.Errorf("%s: worst drift over %d trials max-abs %.3g / L2 %.3g exceeds eps %.3g",
				name, trials, worstAbs, worstL2, sch.Eps)
		}
		t.Logf("%-8s eps=%.3g worst max-abs=%.3g worst L2=%.3g mean L2=%.3g",
			name, sch.Eps, worstAbs, worstL2, sumL2/float64(trials))
	}
}

// TestLiftingPerfectReconstruction: decompose on the lifting tier,
// reconstruct through the reference synthesis — the roundtrip must stay
// within the advertised drift of the original (the synthesis bank
// inverts the convolution analysis, and the lifted analysis is within
// Eps of it).
func TestLiftingPerfectReconstruction(t *testing.T) {
	for _, name := range []string{"haar", "cdf5/3", "db4", "db8", "bior4.4", "rbio4.4", "sym6"} {
		b, err := filter.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sch := liftingScheme(b, filter.Periodic)
		if sch == nil {
			t.Fatalf("%s should admit lifting under periodic extension", name)
		}
		im := image.Landsat(64, 64, 11)
		p, err := DecomposeTol(im, b, filter.Periodic, 3, sch.Eps)
		if err != nil {
			t.Fatal(err)
		}
		rec := Reconstruct(p)
		var maxDiff, maxRef float64
		for r := 0; r < im.Rows; r++ {
			ra, rb := im.Row(r), rec.Row(r)
			for c := range ra {
				maxDiff = math.Max(maxDiff, math.Abs(ra[c]-rb[c]))
				maxRef = math.Max(maxRef, math.Abs(ra[c]))
			}
		}
		// Eps covers the lifted analysis drift; the small additive term
		// absorbs the reference synthesis' own rounding.
		if bound := sch.Eps + 1e-11; maxDiff/maxRef > bound {
			t.Errorf("%s: roundtrip relative error %.3g exceeds %.3g", name, maxDiff/maxRef, bound)
		}
	}
}

// TestDecomposerLiftingSteadyStateAllocs is the allocation gate of the
// lifting tier: a warmed lifting-tier Decomposer performs zero heap
// allocations per decomposition, same as the convolution tier.
func TestDecomposerLiftingSteadyStateAllocs(t *testing.T) {
	im := image.Landsat(128, 128, 42)
	b := filter.Daubechies8()
	sch := liftingScheme(b, filter.Periodic)
	if sch == nil {
		t.Fatal("db8 should admit lifting")
	}
	d := NewDecomposerTol(b, filter.Periodic, 3, sch.Eps)
	if d.sch == nil {
		t.Fatal("NewDecomposerTol at eps = scheme Eps did not resolve the lifting tier")
	}
	if _, err := d.Decompose(im); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := d.Decompose(im); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state lifting Decomposer allocates %.1f objects/op, want 0", allocs)
	}
}

// TestNewDecomposerTolDispatch pins the constructor's tier resolution:
// tolerance 0, non-periodic extensions, and unfactorable banks keep the
// convolution tier; a covering tolerance under periodic extension
// selects lifting.
func TestNewDecomposerTolDispatch(t *testing.T) {
	b := filter.Daubechies8()
	if d := NewDecomposerTol(b, filter.Periodic, 2, 0); d.sch != nil {
		t.Error("tol=0 resolved a lifting scheme")
	}
	if d := NewDecomposerTol(b, filter.Symmetric, 2, 1); d.sch != nil {
		t.Error("symmetric extension resolved a lifting scheme")
	}
	sym7, err := filter.ByName("sym7")
	if err != nil {
		t.Fatal(err)
	}
	if d := NewDecomposerTol(sym7, filter.Periodic, 2, 1); d.sch != nil {
		t.Error("sym7 resolved a lifting scheme (its factorization is pinned degenerate)")
	}
	if d := NewDecomposerTol(b, filter.Periodic, 2, 1); d.sch == nil {
		t.Error("db8/periodic/tol=1 did not resolve the lifting tier")
	}
}

// TestDecomposerTolReusable: the lifting-tier Decomposer stays within
// drift bounds across repeated calls and shape changes (the reused
// buffers are fully overwritten each call).
func TestDecomposerTolReusable(t *testing.T) {
	b, err := filter.ByName("cdf5/3")
	if err != nil {
		t.Fatal(err)
	}
	sch := liftingScheme(b, filter.Periodic)
	d := NewDecomposerTol(b, filter.Periodic, 2, sch.Eps)
	for _, sh := range [][2]int{{64, 32}, {64, 32}, {16, 16}, {64, 32}} {
		im := image.Landsat(sh[0], sh[1], uint64(sh[0]))
		ref, err := DecomposeReference(im, b, filter.Periodic, 2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.Decompose(im)
		if err != nil {
			t.Fatal(err)
		}
		rel, relL2 := pyramidDrift(ref, got)
		if rel > sch.Eps || relL2 > sch.Eps {
			t.Errorf("%dx%d: drift %.3g/%.3g exceeds %.3g", sh[0], sh[1], rel, relL2, sch.Eps)
		}
	}
}
