package wavelet

import (
	"fmt"

	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
)

// Pyramid is a multi-level 2-D Mallat decomposition: the coarsest
// approximation image I_L plus, per level, the LH/HL/HH detail subbands.
// Levels[0] is the coarsest (smallest) detail triple, matching the order
// in which reconstruction consumes them.
type Pyramid struct {
	// Approx is I_L, the level-L approximation.
	Approx *image.Image
	// Levels holds the detail subbands coarsest-first; Levels[i] came
	// from decomposition level L-i.
	Levels []DetailBands
	Bank   *filter.Bank
	Ext    filter.Extension
}

// DetailBands is the detail triple of one pyramid level.
type DetailBands struct {
	LH, HL, HH *image.Image
}

// Depth returns the number of decomposition levels.
func (p *Pyramid) Depth() int { return len(p.Levels) }

// CheckDecomposable verifies that a rows×cols image admits a levels-deep
// decomposition (both dimensions divisible by 2^levels) with the given
// bank.
func CheckDecomposable(rows, cols, levels int) error {
	if levels < 1 {
		return fmt.Errorf("wavelet: levels = %d, want >= 1", levels)
	}
	m := 1 << uint(levels)
	if rows%m != 0 || cols%m != 0 {
		return fmt.Errorf("wavelet: %dx%d image not divisible by 2^%d", rows, cols, levels)
	}
	return nil
}

// DecomposeReference runs the textbook multi-resolution algorithm of the
// paper's Section 2 — levels iterations of row filtering, column
// decimation, column filtering, and row decimation, feeding each LL back
// in as the next level's input — via the reference per-column kernels.
// It is the behavioral source of truth: Decompose dispatches to the
// cache-blocked fast path in internal/wavelet/kernel when the bank and
// extension support it and must produce bit-identical pyramids (the
// equivalence tests compare the two with math.Float64bits).
//
//wavelint:coldpath reference path allocates per call by design; Decompose falls back to it only for unsupported bank/extension pairs
func DecomposeReference(im *image.Image, bank *filter.Bank, ext filter.Extension, levels int) (*Pyramid, error) {
	if err := CheckDecomposable(im.Rows, im.Cols, levels); err != nil {
		return nil, err
	}
	p := &Pyramid{Bank: bank, Ext: ext, Levels: make([]DetailBands, levels)}
	cur := im
	for l := 0; l < levels; l++ {
		sb := Analyze2D(cur, bank, ext)
		p.Levels[levels-1-l] = DetailBands{LH: sb.LH, HL: sb.HL, HH: sb.HH}
		cur = sb.LL
	}
	p.Approx = cur
	return p, nil
}

// Reconstruct inverts Decompose, rebuilding the original image.
func Reconstruct(p *Pyramid) *image.Image {
	cur := p.Approx
	for _, d := range p.Levels {
		cur = Synthesize2D(&Subbands{LL: cur, LH: d.LH, HL: d.HL, HH: d.HH}, p.Bank, p.Ext)
	}
	return cur
}

// Clone returns a deep copy of the pyramid: every band is copied into
// fresh storage, so the clone outlives any reused buffers backing the
// original (the serve layer's Result.Detach relies on this to hand out
// pyramids independent of its Decomposer pools).
func (p *Pyramid) Clone() *Pyramid {
	out := &Pyramid{Bank: p.Bank, Ext: p.Ext, Approx: p.Approx.Clone(), Levels: make([]DetailBands, len(p.Levels))}
	for i, d := range p.Levels {
		out.Levels[i] = DetailBands{LH: d.LH.Clone(), HL: d.HL.Clone(), HH: d.HH.Clone()}
	}
	return out
}

// Mosaic renders the pyramid into a single image of the original size with
// the classic wavelet layout: the approximation in the top-left corner and
// each level's LH (top-right), HL (bottom-left), and HH (bottom-right)
// quadrants around it. Useful for visual inspection and the CLI tools.
func (p *Pyramid) Mosaic() *image.Image {
	rows := p.Approx.Rows << uint(p.Depth())
	cols := p.Approx.Cols << uint(p.Depth())
	out := image.New(rows, cols)
	blit(out.Sub(0, 0, p.Approx.Rows, p.Approx.Cols), p.Approx)
	r, c := p.Approx.Rows, p.Approx.Cols
	for _, d := range p.Levels {
		blit(out.Sub(0, c, d.LH.Rows, d.LH.Cols), d.LH)
		blit(out.Sub(r, 0, d.HL.Rows, d.HL.Cols), d.HL)
		blit(out.Sub(r, c, d.HH.Rows, d.HH.Cols), d.HH)
		r *= 2
		c *= 2
	}
	return out
}

func blit(dst, src *image.Image) {
	for r := 0; r < src.Rows; r++ {
		copy(dst.Row(r), src.Row(r))
	}
}

// Energy returns the total coefficient energy of the pyramid. For an
// orthonormal bank with periodic extension this equals the input image
// energy (Parseval).
func (p *Pyramid) Energy() float64 {
	e := p.Approx.Energy()
	for _, d := range p.Levels {
		e += d.LH.Energy() + d.HL.Energy() + d.HH.Energy()
	}
	return e
}

// Threshold zeroes every detail coefficient with absolute value below t,
// returning the number of coefficients kept (non-zero) and the total
// number of detail coefficients. The approximation band is never
// thresholded. This is the simple compression scheme used by the
// compression example.
func (p *Pyramid) Threshold(t float64) (kept, total int) {
	for _, d := range p.Levels {
		for _, b := range []*image.Image{d.LH, d.HL, d.HH} {
			for r := 0; r < b.Rows; r++ {
				row := b.Row(r)
				for c, v := range row {
					total++
					if v >= -t && v <= t {
						row[c] = 0
					} else {
						kept++
					}
				}
			}
		}
	}
	return kept, total
}

// DecomposeMACs returns the total multiply-accumulate count of a
// levels-deep decomposition of a rows×cols image with a length-f filter.
// Each level processes a quarter of the previous level's pixels.
func DecomposeMACs(rows, cols, f, levels int) int {
	total := 0
	for l := 0; l < levels; l++ {
		total += Level2DMACs(rows, cols, f)
		rows /= 2
		cols /= 2
	}
	return total
}

// PadToDecomposable returns an image whose dimensions are rounded up to
// multiples of 2^levels by symmetric (reflective) extension, along with
// the original size, so arbitrary rasters can go through Decompose. If
// the image is already decomposable it is returned unchanged.
func PadToDecomposable(im *image.Image, levels int) (padded *image.Image, origRows, origCols int) {
	m := 1 << uint(levels)
	rows := (im.Rows + m - 1) / m * m
	cols := (im.Cols + m - 1) / m * m
	if rows == im.Rows && cols == im.Cols {
		return im, im.Rows, im.Cols
	}
	out := image.New(rows, cols)
	for r := 0; r < rows; r++ {
		sr, _ := filter.Symmetric.Index(r, im.Rows)
		src := im.Row(sr)
		dst := out.Row(r)
		for c := 0; c < cols; c++ {
			sc, _ := filter.Symmetric.Index(c, im.Cols)
			dst[c] = src[sc]
		}
	}
	return out, im.Rows, im.Cols
}

// Crop returns the top-left rows×cols region of im (copying), the inverse
// of PadToDecomposable after reconstruction.
func Crop(im *image.Image, rows, cols int) *image.Image {
	return im.Sub(0, 0, rows, cols).Clone()
}
