package kernel

import (
	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
)

// AnalyzeColsRange column-filters the [c0, c1) column panel of src by
// both channels of bank and decimates the rows by two into lo and hi
// (each src.Rows/2 × src.Cols). It is the fast-path equivalent of
// wavelet.AnalyzeCols restricted to a column range.
//
// Instead of gathering one stride-N column at a time (one cache line
// touched per sample), the pass walks PanelWidth-column panels: for each
// output row it visits the filter-length source rows once, accumulating
// a whole panel of lo and hi coefficients per row segment. Consecutive
// output rows overlap in all but two source rows, so the panel's working
// set stays in L1. The destination row segments double as accumulators —
// no scratch is needed — and per-coefficient accumulation order over the
// taps is exactly the reference order, so outputs are bit-identical.
func AnalyzeColsRange(lo, hi, src *image.Image, bank *filter.Bank, ext filter.Extension, c0, c1 int) {
	rows := src.Rows
	half := rows / 2
	fLo, fHi := bank.DecLo, bank.DecHi
	if len(fLo) != len(fHi) {
		// Different channel lengths (biorthogonal banks): the fused loop
		// below shares one interior split across both channels, so run
		// each channel as its own panel pass instead.
		colsChannelRange(lo, src, fLo, ext, c0, c1)
		colsChannelRange(hi, src, fHi, ext, c0, c1)
		return
	}
	f := len(fLo)
	for p0 := c0; p0 < c1; p0 += PanelWidth {
		p1 := p0 + PanelWidth
		if p1 > c1 {
			p1 = c1
		}
		for i := 0; i < half; i++ {
			dLo := lo.RowSeg(i, p0, p1)
			dHi := hi.RowSeg(i, p0, p1)
			for c := range dLo {
				dLo[c] = 0
				dHi[c] = 0
			}
			base := 2 * i
			if base+f <= rows {
				// Interior: the filter support is fully in range, the
				// same split the reference AnalyzeStep uses.
				for k := 0; k < f; k++ {
					s := src.RowSeg(base+k, p0, p1)
					hl, hh := fLo[k], fHi[k]
					for c, v := range s {
						dLo[c] += hl * v
						dHi[c] += hh * v
					}
				}
			} else {
				for k := 0; k < f; k++ {
					j, ok := ext.Index(base+k, rows)
					if !ok {
						continue
					}
					s := src.RowSeg(j, p0, p1)
					hl, hh := fLo[k], fHi[k]
					for c, v := range s {
						dLo[c] += hl * v
						dHi[c] += hh * v
					}
				}
			}
		}
	}
}

// colsChannelRange is the single-channel panel pass used when the two
// analysis channels differ in length. Per-coefficient tap order and the
// interior/border split match the reference AnalyzeStep for this
// channel's own filter length, preserving the bit-identity contract.
func colsChannelRange(dst, src *image.Image, h []float64, ext filter.Extension, c0, c1 int) {
	rows := src.Rows
	half := rows / 2
	f := len(h)
	for p0 := c0; p0 < c1; p0 += PanelWidth {
		p1 := p0 + PanelWidth
		if p1 > c1 {
			p1 = c1
		}
		for i := 0; i < half; i++ {
			d := dst.RowSeg(i, p0, p1)
			for c := range d {
				d[c] = 0
			}
			base := 2 * i
			if base+f <= rows {
				for k := 0; k < f; k++ {
					s := src.RowSeg(base+k, p0, p1)
					w := h[k]
					for c, v := range s {
						d[c] += w * v
					}
				}
			} else {
				for k := 0; k < f; k++ {
					j, ok := ext.Index(base+k, rows)
					if !ok {
						continue
					}
					s := src.RowSeg(j, p0, p1)
					w := h[k]
					for c, v := range s {
						d[c] += w * v
					}
				}
			}
		}
	}
}
