package kernel

import (
	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
)

// rowFunc filters one even-length row x by the lo/hi filter pair and
// decimates by two into dLo/dHi (each len(x)/2). Specialized variants
// ignore ext (they are selected only when it is Periodic).
type rowFunc func(x, lo, hi, dLo, dHi []float64, ext filter.Extension)

// AnalyzeRowsRange row-filters rows [r0, r1) of src by both channels of
// bank and decimates the columns by two into l and h (each src.Rows ×
// src.Cols/2). It is the fast-path equivalent of wavelet.AnalyzeRows
// restricted to a row range, with both channels fused into one pass over
// each source row and the per-tap loop unrolled for the hot filter
// lengths under periodic extension. Outputs are bit-identical to the
// reference (see the package comment).
func AnalyzeRowsRange(l, h, src *image.Image, bank *filter.Bank, ext filter.Extension, r0, r1 int) {
	k := pickRow(bank, ext, src.Cols)
	for r := r0; r < r1; r++ {
		k(src.Row(r), bank.DecLo, bank.DecHi, l.Row(r), h.Row(r), ext)
	}
}

// AnalyzeRow filters one even-length row by the bank's analysis pair and
// decimates by two into dLo/dHi (each len(x)/2), through the same kernel
// selection as AnalyzeRowsRange. Exported for transforms built on the
// kernel layer outside the pyramid dispatch (the Walsh–Hadamard cascade).
func AnalyzeRow(x []float64, bank *filter.Bank, ext filter.Extension, dLo, dHi []float64) {
	pickRow(bank, ext, len(x))(x, bank.DecLo, bank.DecHi, dLo, dHi, ext)
}

// pickRow selects the row kernel: an unrolled periodic specialization
// when both analysis channels share one of the hot lengths and the
// signal is long enough that wrapped indices need at most one
// subtraction; the fused generic kernel for other equal-length banks;
// and the per-channel split kernel when the analysis channels have
// different lengths (biorthogonal banks).
func pickRow(bank *filter.Bank, ext filter.Extension, n int) rowFunc {
	f := len(bank.DecLo)
	if len(bank.DecHi) != f {
		return rowsSplit
	}
	if ext == filter.Periodic && n >= f {
		switch f {
		case 2:
			return rowsPeriodic2
		case 4:
			return rowsPeriodic4
		case 6:
			return rowsPeriodic6
		case 8:
			return rowsPeriodic8
		}
	}
	return rowsGeneric
}

// rowsSplit handles analysis pairs of different channel lengths by
// running each channel as its own pass, each mirroring
// wavelet.AnalyzeStep exactly (the interior/border split depends on the
// channel's own filter length).
func rowsSplit(x, lo, hi, dLo, dHi []float64, ext filter.Extension) {
	rowChannel(x, lo, dLo, ext)
	rowChannel(x, hi, dHi, ext)
}

func rowChannel(x, h, dst []float64, ext filter.Extension) {
	n := len(x)
	f := len(h)
	half := n / 2
	interior := (n - f) / 2
	if n < f {
		interior = -1 // truncating division mishandles n-f = -1
	}
	for i := 0; i <= interior; i++ {
		xx := x[2*i : 2*i+f]
		var a float64
		for k, v := range xx {
			a += h[k] * v
		}
		dst[i] = a
	}
	for i := interior + 1; i < half; i++ {
		var a float64
		for k := 0; k < f; k++ {
			j, ok := ext.Index(2*i+k, n)
			if ok {
				a += h[k] * x[j]
			}
		}
		dst[i] = a
	}
}

// rowsGeneric mirrors wavelet.AnalyzeStep exactly (interior/border
// split, ext.Index at the borders) with the lo and hi channels fused
// into one pass over x.
func rowsGeneric(x, lo, hi, dLo, dHi []float64, ext filter.Extension) {
	n := len(x)
	f := len(lo)
	half := n / 2
	interior := (n - f) / 2
	if n < f {
		interior = -1 // truncating division mishandles n-f = -1
	}
	for i := 0; i <= interior; i++ {
		xx := x[2*i : 2*i+f]
		var a, d float64
		for k, v := range xx {
			a += lo[k] * v
			d += hi[k] * v
		}
		dLo[i] = a
		dHi[i] = d
	}
	for i := interior + 1; i < half; i++ {
		var a, d float64
		for k := 0; k < f; k++ {
			j, ok := ext.Index(2*i+k, n)
			if ok {
				v := x[j]
				a += lo[k] * v
				d += hi[k] * v
			}
		}
		dLo[i] = a
		dHi[i] = d
	}
}

// rowsPeriodicTail handles the wrapped outputs of the unrolled periodic
// kernels: for n >= f every index 2i+k is below 2n, so a single
// subtraction replaces ext.Index.
func rowsPeriodicTail(x, lo, hi, dLo, dHi []float64, from int) {
	n := len(x)
	f := len(lo)
	for i := from; i < n/2; i++ {
		var a, d float64
		for k := 0; k < f; k++ {
			j := 2*i + k
			if j >= n {
				j -= n
			}
			v := x[j]
			a += lo[k] * v
			d += hi[k] * v
		}
		dLo[i] = a
		dHi[i] = d
	}
}

func rowsPeriodic2(x, lo, hi, dLo, dHi []float64, _ filter.Extension) {
	n := len(x)
	l0, l1 := lo[0], lo[1]
	h0, h1 := hi[0], hi[1]
	// f=2 never wraps: 2i+1 <= n-1 for every output.
	for i := 0; i < n/2; i++ {
		xx := x[2*i : 2*i+2]
		x0, x1 := xx[0], xx[1]
		var a float64
		a += l0 * x0
		a += l1 * x1
		dLo[i] = a
		var d float64
		d += h0 * x0
		d += h1 * x1
		dHi[i] = d
	}
}

func rowsPeriodic4(x, lo, hi, dLo, dHi []float64, _ filter.Extension) {
	n := len(x)
	l0, l1, l2, l3 := lo[0], lo[1], lo[2], lo[3]
	h0, h1, h2, h3 := hi[0], hi[1], hi[2], hi[3]
	interior := (n - 4) / 2
	i := 0
	for ; i <= interior; i++ {
		xx := x[2*i : 2*i+4]
		x0, x1, x2, x3 := xx[0], xx[1], xx[2], xx[3]
		var a float64
		a += l0 * x0
		a += l1 * x1
		a += l2 * x2
		a += l3 * x3
		dLo[i] = a
		var d float64
		d += h0 * x0
		d += h1 * x1
		d += h2 * x2
		d += h3 * x3
		dHi[i] = d
	}
	rowsPeriodicTail(x, lo, hi, dLo, dHi, i)
}

func rowsPeriodic6(x, lo, hi, dLo, dHi []float64, _ filter.Extension) {
	n := len(x)
	l0, l1, l2, l3, l4, l5 := lo[0], lo[1], lo[2], lo[3], lo[4], lo[5]
	h0, h1, h2, h3, h4, h5 := hi[0], hi[1], hi[2], hi[3], hi[4], hi[5]
	interior := (n - 6) / 2
	i := 0
	for ; i <= interior; i++ {
		xx := x[2*i : 2*i+6]
		x0, x1, x2 := xx[0], xx[1], xx[2]
		x3, x4, x5 := xx[3], xx[4], xx[5]
		var a float64
		a += l0 * x0
		a += l1 * x1
		a += l2 * x2
		a += l3 * x3
		a += l4 * x4
		a += l5 * x5
		dLo[i] = a
		var d float64
		d += h0 * x0
		d += h1 * x1
		d += h2 * x2
		d += h3 * x3
		d += h4 * x4
		d += h5 * x5
		dHi[i] = d
	}
	rowsPeriodicTail(x, lo, hi, dLo, dHi, i)
}

func rowsPeriodic8(x, lo, hi, dLo, dHi []float64, _ filter.Extension) {
	n := len(x)
	l0, l1, l2, l3, l4, l5, l6, l7 := lo[0], lo[1], lo[2], lo[3], lo[4], lo[5], lo[6], lo[7]
	h0, h1, h2, h3, h4, h5, h6, h7 := hi[0], hi[1], hi[2], hi[3], hi[4], hi[5], hi[6], hi[7]
	interior := (n - 8) / 2
	i := 0
	for ; i <= interior; i++ {
		xx := x[2*i : 2*i+8]
		x0, x1, x2, x3 := xx[0], xx[1], xx[2], xx[3]
		x4, x5, x6, x7 := xx[4], xx[5], xx[6], xx[7]
		var a float64
		a += l0 * x0
		a += l1 * x1
		a += l2 * x2
		a += l3 * x3
		a += l4 * x4
		a += l5 * x5
		a += l6 * x6
		a += l7 * x7
		dLo[i] = a
		var d float64
		d += h0 * x0
		d += h1 * x1
		d += h2 * x2
		d += h3 * x3
		d += h4 * x4
		d += h5 * x5
		d += h6 * x6
		d += h7 * x7
		dHi[i] = d
	}
	rowsPeriodicTail(x, lo, hi, dLo, dHi, i)
}
