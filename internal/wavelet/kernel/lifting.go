package kernel

import (
	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
)

// This file is the lifting tier: the factored predict/update schemes of
// internal/filter executed as fused 2-D sweeps. One row pass per level
// deinterleaves each source row's polyphase pair directly into the
// vertically-deinterleaved subband images (no intermediate L/H scratch at
// all), and one in-place panel-blocked column pass lifts down the rows of
// each subband pair. Lifting reorders accumulation relative to the
// convolution kernels, so this tier is *not* under the bit-identity
// contract of the package comment — it is dispatched only when the caller
// opts in with a tolerance at least the scheme's advertised Eps, and only
// under periodic extension, where the factorization is an exact algebraic
// identity (see internal/filter/lifting.go). The drift-bound property
// suite in internal/wavelet enforces Eps end to end.
//
// Per-coefficient arithmetic here is ordered exactly as
// filter.ApplyLifting1D (per-step accumulator over the taps, then one
// add into the destination channel), so the kernels are bit-identical to
// the 1-D executable definition the factorization was validated against;
// blocking only reorders work across coefficients.

// maxLiftTaps bounds the taps of a single lifting step the column kernel
// can execute with a fixed row-segment window. Catalog schemes stay well
// under it (longest is 4); LiftingSupported rejects anything longer.
const maxLiftTaps = 8

// maxLiftShift bounds the |monomial shift| the single-pass
// scale-and-rotate can realize with a fixed spill buffer; larger shifts
// fall back to the three-reversal rotation. Catalog schemes top out at 7
// (sym8's detail channel).
const maxLiftShift = 8

// LiftingSupported reports whether the lifting tier can serve the
// bank/extension pair: periodic extension (the only extension under
// which the polyphase factorization equals convolution — Laurent
// identities hold in the quotient ring mod z^half−1, i.e. on circular
// signals) and a bank whose factorization succeeded with steps the
// column kernel can run. Everything else stays on the convolution tier.
//
//wavelint:coldpath dispatch predicate, runs once per transform and resolves a cached factorization
func LiftingSupported(bank *filter.Bank, ext filter.Extension) bool {
	if ext != filter.Periodic {
		return false
	}
	_, err := LiftingScheme(bank)
	return err == nil
}

// LiftingScheme resolves the bank's lifting scheme, additionally
// enforcing the kernel-side step-width bound.
//
//wavelint:coldpath factorization resolve, runs once per bank per process
func LiftingScheme(bank *filter.Bank) (*filter.LiftingScheme, error) {
	sch, err := filter.Lifting(bank)
	if err != nil {
		return nil, err
	}
	for _, st := range sch.Steps {
		if len(st.Taps) > maxLiftTaps {
			return nil, errStepTooWide
		}
	}
	return sch, nil
}

type liftErr string

func (e liftErr) Error() string { return string(e) }

// errStepTooWide is interface-typed at package init so returning it
// never boxes on a hot-adjacent path (the lint escape gate covers this
// package wall to wall).
var errStepTooWide error = liftErr("kernel: lifting step exceeds maxLiftTaps")

// LiftRowsRange lifts rows [r0, r1) of src and scatters each row's
// polyphase outputs straight into the subband images of the level: even
// source rows land in (ll, hl), odd rows in (lh, hh) — the vertical
// deinterleave that LiftColsRange then consumes in place. Each of the
// four destinations is src.Rows/2 × src.Cols/2. Distinct source rows
// write distinct destination rows, so disjoint [r0, r1) ranges may run
// concurrently.
func LiftRowsRange(ll, lh, hl, hh, src *image.Image, sch *filter.LiftingScheme, r0, r1 int) {
	for r := r0; r < r1; r++ {
		x := src.Row(r)
		var s, d []float64
		if r&1 == 0 {
			s, d = ll.Row(r>>1), hl.Row(r>>1)
		} else {
			s, d = lh.Row(r>>1), hh.Row(r>>1)
		}
		liftRow(x, s, d, sch)
	}
}

// liftRow runs the full scheme on one source row: deinterleave into the
// destination pair (fused with the first lifting step's interior, which
// can read its source samples straight from the interleaved row), the
// remaining lifting steps in place, then the channel scale-and-rotate.
func liftRow(x, s, d []float64, sch *filter.LiftingScheme) {
	half := len(s)
	first := 0
	if len(sch.Steps) > 0 {
		liftRowDeinterleaveStep0(x, s, d, &sch.Steps[0])
		first = 1
	} else {
		for i := 0; i < half; i++ {
			s[i], d[i] = x[2*i], x[2*i+1]
		}
	}
	for si := first; si < len(sch.Steps); si++ {
		st := &sch.Steps[si]
		if st.ToS {
			liftRowStep(s, d, st)
		} else {
			liftRowStep(d, s, st)
		}
	}
	scaleRotateVec(s, sch.SScale, sch.SShift)
	scaleRotateVec(d, sch.DScale, sch.DShift)
}

// liftRowDeinterleaveStep0 deinterleaves x into (s, d) and applies the
// first lifting step in the same sweep: over the step's interior the
// source samples are read directly from the interleaved row (source
// channel phase 0 when the step updates d, phase 1 when it updates s),
// so the first step costs no separate pass. Border positions are
// finished afterwards through the same wrapped accumulator as every
// other step, once the source channel is fully populated.
func liftRowDeinterleaveStep0(x, s, d []float64, st *filter.LiftStep) {
	half := len(s)
	lo := st.Lo
	taps := st.Taps
	f := len(taps)
	i0, i1 := liftInterior(lo, f, half)
	for i := 0; i < i0; i++ {
		s[i], d[i] = x[2*i], x[2*i+1]
	}
	phase := 0 // step updates d, reads the even (s) phase
	if st.ToS {
		phase = 1 // step updates s, reads the odd (d) phase
	}
	switch {
	case f == 2 && !st.ToS:
		t0, t1 := taps[0], taps[1]
		for i := i0; i < i1; i++ {
			b := 2 * (i + lo)
			s[i] = x[2*i]
			d[i] = x[2*i+1] + (t0*x[b] + t1*x[b+2])
		}
	case f == 2 && st.ToS:
		t0, t1 := taps[0], taps[1]
		for i := i0; i < i1; i++ {
			b := 2*(i+lo) + 1
			d[i] = x[2*i+1]
			s[i] = x[2*i] + (t0*x[b] + t1*x[b+2])
		}
	case f == 1 && !st.ToS:
		t0 := taps[0]
		for i := i0; i < i1; i++ {
			s[i] = x[2*i]
			d[i] = x[2*i+1] + t0*x[2*(i+lo)]
		}
	case f == 1 && st.ToS:
		t0 := taps[0]
		for i := i0; i < i1; i++ {
			d[i] = x[2*i+1]
			s[i] = x[2*i] + t0*x[2*(i+lo)+1]
		}
	default:
		for i := i0; i < i1; i++ {
			var acc float64
			b := 2*(i+lo) + phase
			for j, t := range taps {
				acc += t * x[b+2*j]
			}
			s[i], d[i] = x[2*i], x[2*i+1]
			if st.ToS {
				s[i] += acc
			} else {
				d[i] += acc
			}
		}
	}
	for i := i1; i < half; i++ {
		s[i], d[i] = x[2*i], x[2*i+1]
	}
	// Borders, with both channels now deinterleaved. The step never
	// mutates its own source channel, so the late application sees the
	// same source values an unfused pass would.
	if st.ToS {
		for i := 0; i < i0; i++ {
			s[i] += liftWrapAcc(d, taps, i+lo, half)
		}
		for i := i1; i < half; i++ {
			s[i] += liftWrapAcc(d, taps, i+lo, half)
		}
	} else {
		for i := 0; i < i0; i++ {
			d[i] += liftWrapAcc(s, taps, i+lo, half)
		}
		for i := i1; i < half; i++ {
			d[i] += liftWrapAcc(s, taps, i+lo, half)
		}
	}
}

// liftRowStep applies dst[i] += Σ_j taps[j]·src[(i+Lo+j) mod half] with
// the wrap confined to the borders: the interior runs branch-free and is
// specialized for the dominant one- and two-tap steps.
func liftRowStep(dst, src []float64, st *filter.LiftStep) {
	half := len(dst)
	lo := st.Lo
	taps := st.Taps
	f := len(taps)
	i0, i1 := liftInterior(lo, f, half)
	for i := 0; i < i0; i++ {
		dst[i] += liftWrapAcc(src, taps, i+lo, half)
	}
	switch f {
	case 1:
		t0 := taps[0]
		for i := i0; i < i1; i++ {
			dst[i] += t0 * src[i+lo]
		}
	case 2:
		// Four-way unroll sharing the overlapping loads: consecutive
		// positions reuse three of four source samples. Per-position
		// arithmetic is unchanged (one fused accumulator, one add).
		t0, t1 := taps[0], taps[1]
		i := i0
		for ; i+4 <= i1; i += 4 {
			b := i + lo
			a0, a1, a2, a3, a4 := src[b], src[b+1], src[b+2], src[b+3], src[b+4]
			dst[i] += t0*a0 + t1*a1
			dst[i+1] += t0*a1 + t1*a2
			dst[i+2] += t0*a2 + t1*a3
			dst[i+3] += t0*a3 + t1*a4
		}
		for ; i < i1; i++ {
			dst[i] += t0*src[i+lo] + t1*src[i+lo+1]
		}
	case 3:
		t0, t1, t2 := taps[0], taps[1], taps[2]
		i := i0
		for ; i+2 <= i1; i += 2 {
			b := i + lo
			a0, a1, a2, a3 := src[b], src[b+1], src[b+2], src[b+3]
			dst[i] += t0*a0 + t1*a1 + t2*a2
			dst[i+1] += t0*a1 + t1*a2 + t2*a3
		}
		for ; i < i1; i++ {
			b := i + lo
			dst[i] += t0*src[b] + t1*src[b+1] + t2*src[b+2]
		}
	default:
		for i := i0; i < i1; i++ {
			var acc float64
			b := i + lo
			for j, t := range taps {
				acc += t * src[b+j]
			}
			dst[i] += acc
		}
	}
	for i := i1; i < half; i++ {
		dst[i] += liftWrapAcc(src, taps, i+lo, half)
	}
}

// liftInterior returns the [i0, i1) output range over which every tap
// index i+lo+j stays inside [0, half) — outside it the accesses wrap.
func liftInterior(lo, f, half int) (i0, i1 int) {
	i0 = -lo
	if i0 < 0 {
		i0 = 0
	}
	if i0 > half {
		i0 = half
	}
	i1 = half - lo - f + 1
	if i1 > half {
		i1 = half
	}
	if i1 < i0 {
		i1 = i0
	}
	return i0, i1
}

// liftWrapAcc is the border accumulator, same tap order as the interior.
func liftWrapAcc(src, taps []float64, base, n int) float64 {
	var acc float64
	for j, t := range taps {
		idx := (base + j) % n
		if idx < 0 {
			idx += n
		}
		acc += t * src[idx]
	}
	return acc
}

// scaleRotateVec realizes the diagonal monomial of the scheme on one
// row: v[i] = c·v[(i+k) mod n], in place. Rotation and elementwise scale
// commute bitwise (the rotation only permutes which element each product
// reads), so the shift is folded into a single scaled sweep, spilling
// the wrapped elements — at most maxLiftShift of them — into a stack
// buffer. Shifts beyond the spill window fall back to the three-reversal
// rotation; the result matches filter.ApplyLifting1D's finishing step
// exactly either way.
func scaleRotateVec(v []float64, c float64, k int) {
	n := len(v)
	if k %= n; k < 0 {
		k += n
	}
	var tmp [maxLiftShift]float64
	switch {
	case k == 0:
		if c != 1 {
			for i := range v {
				v[i] *= c
			}
		}
	case k <= maxLiftShift:
		// Left-rotate by small k: out[i] = c·v[i+k] ascending reads
		// ahead of the writes; the first k elements wrap to the tail.
		copy(tmp[:k], v[:k])
		for i := 0; i < n-k; i++ {
			v[i] = c * v[i+k]
		}
		for i := 0; i < k; i++ {
			v[n-k+i] = c * tmp[i]
		}
	case n-k <= maxLiftShift:
		// Equivalent right-rotate by small m = n−k: descending writes
		// read below themselves; the last m sources wrap to the front.
		m := n - k
		copy(tmp[:m], v[k:])
		for i := n - 1; i >= m; i-- {
			v[i] = c * v[i-m]
		}
		for i := 0; i < m; i++ {
			v[i] = c * tmp[i]
		}
	default:
		reverseVec(v[:k])
		reverseVec(v[k:])
		reverseVec(v)
		if c != 1 {
			for i := range v {
				v[i] *= c
			}
		}
	}
}

func reverseVec(v []float64) {
	for a, b := 0, len(v)-1; a < b; a, b = a+1, b-1 {
		v[a], v[b] = v[b], v[a]
	}
}

// LiftColsRange lifts the column panel [c0, c1) of the vertically
// deinterleaved subband pair (s, d) in place: each column c is the
// polyphase pair (s[·][c], d[·][c]) of one length-2·s.Rows source
// column. Panels are processed through all lifting steps plus the final
// scale-and-rotate while resident in cache; disjoint column ranges touch
// disjoint memory, so they may run concurrently.
func LiftColsRange(s, d *image.Image, sch *filter.LiftingScheme, c0, c1 int) {
	for p0 := c0; p0 < c1; p0 += PanelWidth {
		p1 := p0 + PanelWidth
		if p1 > c1 {
			p1 = c1
		}
		for si := range sch.Steps {
			st := &sch.Steps[si]
			if st.ToS {
				liftColsStep(s, d, st, p0, p1)
			} else {
				liftColsStep(d, s, st, p0, p1)
			}
		}
		scaleRotateRows(s, sch.SScale, sch.SShift, p0, p1)
		scaleRotateRows(d, sch.DScale, sch.DShift, p0, p1)
	}
}

// liftColsStep is liftRowStep turned sideways: one destination row
// segment accumulates from the tap-offset source rows, with the same
// per-coefficient accumulator order.
func liftColsStep(dst, src *image.Image, st *filter.LiftStep, p0, p1 int) {
	half := dst.Rows
	lo := st.Lo
	taps := st.Taps
	f := len(taps)
	i0, i1 := liftInterior(lo, f, half)
	for i := 0; i < i0; i++ {
		liftColsWrapRow(dst, src, taps, i, lo, half, p0, p1)
	}
	switch f {
	case 1:
		t0 := taps[0]
		for i := i0; i < i1; i++ {
			dr := dst.RowSeg(i, p0, p1)
			s0 := src.RowSeg(i+lo, p0, p1)[:len(dr)]
			for c, v := range s0 {
				dr[c] += t0 * v
			}
		}
	case 2:
		// Two destination rows per iteration share the middle source
		// row, halving the loads down the panel.
		t0, t1 := taps[0], taps[1]
		i := i0
		for ; i+2 <= i1; i += 2 {
			dr0 := dst.RowSeg(i, p0, p1)
			dr1 := dst.RowSeg(i+1, p0, p1)[:len(dr0)]
			s0 := src.RowSeg(i+lo, p0, p1)[:len(dr0)]
			s1 := src.RowSeg(i+lo+1, p0, p1)[:len(dr0)]
			s2 := src.RowSeg(i+lo+2, p0, p1)[:len(dr0)]
			for c := range dr0 {
				a1 := s1[c]
				dr0[c] += t0*s0[c] + t1*a1
				dr1[c] += t0*a1 + t1*s2[c]
			}
		}
		for ; i < i1; i++ {
			dr := dst.RowSeg(i, p0, p1)
			s0 := src.RowSeg(i+lo, p0, p1)[:len(dr)]
			s1 := src.RowSeg(i+lo+1, p0, p1)[:len(dr)]
			for c := range dr {
				dr[c] += t0*s0[c] + t1*s1[c]
			}
		}
	case 3:
		t0, t1, t2 := taps[0], taps[1], taps[2]
		i := i0
		for ; i+2 <= i1; i += 2 {
			dr0 := dst.RowSeg(i, p0, p1)
			dr1 := dst.RowSeg(i+1, p0, p1)[:len(dr0)]
			s0 := src.RowSeg(i+lo, p0, p1)[:len(dr0)]
			s1 := src.RowSeg(i+lo+1, p0, p1)[:len(dr0)]
			s2 := src.RowSeg(i+lo+2, p0, p1)[:len(dr0)]
			s3 := src.RowSeg(i+lo+3, p0, p1)[:len(dr0)]
			for c := range dr0 {
				a1, a2 := s1[c], s2[c]
				dr0[c] += t0*s0[c] + t1*a1 + t2*a2
				dr1[c] += t0*a1 + t1*a2 + t2*s3[c]
			}
		}
		for ; i < i1; i++ {
			dr := dst.RowSeg(i, p0, p1)
			s0 := src.RowSeg(i+lo, p0, p1)[:len(dr)]
			s1 := src.RowSeg(i+lo+1, p0, p1)[:len(dr)]
			s2 := src.RowSeg(i+lo+2, p0, p1)[:len(dr)]
			for c := range dr {
				dr[c] += t0*s0[c] + t1*s1[c] + t2*s2[c]
			}
		}
	default:
		var segs [maxLiftTaps][]float64
		for i := i0; i < i1; i++ {
			dr := dst.RowSeg(i, p0, p1)
			for j := 0; j < f; j++ {
				segs[j] = src.RowSeg(i+lo+j, p0, p1)
			}
			for c := range dr {
				var acc float64
				for j := 0; j < f; j++ {
					acc += taps[j] * segs[j][c]
				}
				dr[c] += acc
			}
		}
	}
	for i := i1; i < half; i++ {
		liftColsWrapRow(dst, src, taps, i, lo, half, p0, p1)
	}
}

// liftColsWrapRow handles one border destination row with wrapped source
// indices, accumulator-ordered like the interior.
func liftColsWrapRow(dst, src *image.Image, taps []float64, i, lo, half, p0, p1 int) {
	var segs [maxLiftTaps][]float64
	f := len(taps)
	for j := 0; j < f; j++ {
		idx := (i + lo + j) % half
		if idx < 0 {
			idx += half
		}
		segs[j] = src.RowSeg(idx, p0, p1)
	}
	dr := dst.RowSeg(i, p0, p1)
	for c := range dr {
		var acc float64
		for j := 0; j < f; j++ {
			acc += taps[j] * segs[j][c]
		}
		dr[c] += acc
	}
}

// scaleRotateRows is scaleRotateVec down the row axis, confined to the
// [p0, p1) column segment so concurrent column ranges stay disjoint. The
// spilled rows cap the panel at PanelWidth columns, which LiftColsRange
// guarantees.
func scaleRotateRows(img *image.Image, c float64, k, p0, p1 int) {
	n := img.Rows
	w := p1 - p0
	if k %= n; k < 0 {
		k += n
	}
	switch {
	case k == 0:
		if c != 1 {
			for i := 0; i < n; i++ {
				r := img.RowSeg(i, p0, p1)
				for j := range r {
					r[j] *= c
				}
			}
		}
	case k <= maxLiftShift:
		var tmp [maxLiftShift][PanelWidth]float64
		for i := 0; i < k; i++ {
			copy(tmp[i][:w], img.RowSeg(i, p0, p1))
		}
		for i := 0; i < n-k; i++ {
			scaleSegInto(img.RowSeg(i, p0, p1), img.RowSeg(i+k, p0, p1), c, w)
		}
		for i := 0; i < k; i++ {
			scaleSegInto(img.RowSeg(n-k+i, p0, p1), tmp[i][:w], c, w)
		}
	case n-k <= maxLiftShift:
		var tmp [maxLiftShift][PanelWidth]float64
		m := n - k
		for i := 0; i < m; i++ {
			copy(tmp[i][:w], img.RowSeg(k+i, p0, p1))
		}
		for i := n - 1; i >= m; i-- {
			scaleSegInto(img.RowSeg(i, p0, p1), img.RowSeg(i-m, p0, p1), c, w)
		}
		for i := 0; i < m; i++ {
			scaleSegInto(img.RowSeg(i, p0, p1), tmp[i][:w], c, w)
		}
	default:
		reverseRowsSeg(img, 0, k, p0, p1)
		reverseRowsSeg(img, k, n, p0, p1)
		reverseRowsSeg(img, 0, n, p0, p1)
		if c != 1 {
			for i := 0; i < n; i++ {
				r := img.RowSeg(i, p0, p1)
				for j := range r {
					r[j] *= c
				}
			}
		}
	}
}

// scaleSegInto writes dst[j] = c·src[j] over the first w elements.
func scaleSegInto(dst, src []float64, c float64, w int) {
	dst = dst[:w]
	src = src[:w]
	for j := range dst {
		dst[j] = c * src[j]
	}
}

func reverseRowsSeg(img *image.Image, a, b, p0, p1 int) {
	for i, j := a, b-1; i < j; i, j = i+1, j-1 {
		ri, rj := img.RowSeg(i, p0, p1), img.RowSeg(j, p0, p1)
		for c := range ri {
			ri[c], rj[c] = rj[c], ri[c]
		}
	}
}
