package kernel

import (
	"sync"

	"wavelethpc/internal/image"
)

// Arena is the reusable scratch of one in-flight decomposition: backing
// slabs for the intermediate L/H images of each level and a ping-pong
// pair for the LL chain between levels. Buffers are sized once at the
// top level (the deeper levels fit inside the same slabs) and grow only
// when a larger image arrives, so steady-state decompositions allocate
// nothing. An Arena is not safe for concurrent use by multiple
// decompositions, but the images it hands out may be filled from many
// goroutines over disjoint ranges.
type Arena struct {
	lBuf, hBuf []float64 // intermediate L/H backing
	llBuf      [2][]float64
	l, h       image.Image
	ll         [2]image.Image
}

// grow returns buf resized to n samples, reallocating only when the
// capacity is insufficient.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// view points header at a rows×cols tight-stride image over buf.
func view(header *image.Image, buf []float64, rows, cols int) *image.Image {
	header.Rows, header.Cols, header.Stride, header.Pix = rows, cols, cols, buf
	return header
}

// Intermediate returns the two rows×cols scratch images holding the
// row-pass outputs L and H of the current level. The returned images
// alias the arena and are invalidated by the next Intermediate call.
func (ar *Arena) Intermediate(rows, cols int) (l, h *image.Image) {
	n := rows * cols
	ar.lBuf = grow(ar.lBuf, n)
	ar.hBuf = grow(ar.hBuf, n)
	return view(&ar.l, ar.lBuf[:n], rows, cols), view(&ar.h, ar.hBuf[:n], rows, cols)
}

// LL returns the rows×cols scratch image holding an intermediate LL
// band. Two slots ping-pong across levels: level l writes slot l%2 while
// reading the previous level's LL from slot (l-1)%2.
func (ar *Arena) LL(slot, rows, cols int) *image.Image {
	n := rows * cols
	ar.llBuf[slot] = grow(ar.llBuf[slot], n)
	return view(&ar.ll[slot], ar.llBuf[slot][:n], rows, cols)
}

// arenaPool recycles arenas across decompositions; BatchDecompose
// workers and repeated Decompose calls reach steady state with zero
// scratch allocations.
var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// GetArena takes an arena from the shared pool.
func GetArena() *Arena { return arenaPool.Get().(*Arena) }

// PutArena returns an arena to the shared pool. The caller must not
// retain any image previously handed out by it.
func PutArena(ar *Arena) { arenaPool.Put(ar) }
