package kernel

import (
	"math"
	"math/rand"
	"testing"

	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
)

func randImage(rows, cols int, seed int64) *image.Image {
	rng := rand.New(rand.NewSource(seed))
	im := image.New(rows, cols)
	for r := 0; r < rows; r++ {
		row := im.Row(r)
		for c := range row {
			row[c] = rng.NormFloat64() * 10
		}
	}
	return im
}

// refAnalyzeStep is a local copy of the reference convolve-and-decimate
// semantics (wavelet.AnalyzeStep), kept here so the kernel package can
// assert bit-identity without importing its own caller.
func refAnalyzeStep(x, h []float64, ext filter.Extension, dst []float64) {
	n := len(x)
	interior := (n - len(h)) / 2
	if n < len(h) {
		interior = -1 // truncating division mishandles n-len(h) = -1
	}
	for i := 0; i <= interior; i++ {
		var acc float64
		for k, hk := range h {
			acc += hk * x[2*i+k]
		}
		dst[i] = acc
	}
	for i := interior + 1; i < n/2; i++ {
		var acc float64
		for k, hk := range h {
			if j, ok := ext.Index(2*i+k, n); ok {
				acc += hk * x[j]
			}
		}
		dst[i] = acc
	}
}

func requireBits(t *testing.T, label string, want, got []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s[%d]: %g vs %g (bits %#x vs %#x)", label, i,
				want[i], got[i], math.Float64bits(want[i]), math.Float64bits(got[i]))
		}
	}
}

// TestRowKernelsBitIdentical drives every row kernel (unrolled and
// generic) against the reference semantics over lengths that hit the
// interior-only, wrapped-tail, and shorter-than-filter regimes.
func TestRowKernelsBitIdentical(t *testing.T) {
	banks := []*filter.Bank{filter.Haar(), filter.Daubechies4(), filter.Daubechies6(), filter.Daubechies8()}
	exts := []filter.Extension{filter.Periodic, filter.Symmetric, filter.Zero}
	rng := rand.New(rand.NewSource(99))
	for _, b := range banks {
		for _, ext := range exts {
			for _, n := range []int{0, 2, 4, 6, 8, 10, 16, 64, 126} {
				x := make([]float64, n)
				for i := range x {
					x[i] = rng.NormFloat64()
				}
				wantLo := make([]float64, n/2)
				wantHi := make([]float64, n/2)
				refAnalyzeStep(x, b.DecLo, ext, wantLo)
				refAnalyzeStep(x, b.DecHi, ext, wantHi)
				gotLo := make([]float64, n/2)
				gotHi := make([]float64, n/2)
				pickRow(b, ext, n)(x, b.DecLo, b.DecHi, gotLo, gotHi, ext)
				label := b.Name + "/" + ext.String()
				requireBits(t, label+"/lo", wantLo, gotLo)
				requireBits(t, label+"/hi", wantHi, gotHi)
			}
		}
	}
}

// TestColsRangeBitIdentical checks the blocked column pass against the
// reference per-column convolution, over shapes that exercise partial
// panels (cols not a multiple of PanelWidth) and short columns.
func TestColsRangeBitIdentical(t *testing.T) {
	banks := []*filter.Bank{filter.Haar(), filter.Daubechies8()}
	exts := []filter.Extension{filter.Periodic, filter.Symmetric, filter.Zero}
	shapes := [][2]int{{2, 2}, {4, 3}, {8, PanelWidth - 1}, {16, PanelWidth + 5}, {6, 2*PanelWidth + 7}}
	for _, b := range banks {
		for _, ext := range exts {
			for _, sh := range shapes {
				src := randImage(sh[0], sh[1], int64(sh[0]*1000+sh[1]))
				lo := image.New(sh[0]/2, sh[1])
				hi := image.New(sh[0]/2, sh[1])
				AnalyzeColsRange(lo, hi, src, b, ext, 0, sh[1])
				col := make([]float64, sh[0])
				wantLo := make([]float64, sh[0]/2)
				wantHi := make([]float64, sh[0]/2)
				for c := 0; c < sh[1]; c++ {
					col = src.Col(c, col)
					refAnalyzeStep(col, b.DecLo, ext, wantLo)
					refAnalyzeStep(col, b.DecHi, ext, wantHi)
					for i := range wantLo {
						if math.Float64bits(wantLo[i]) != math.Float64bits(lo.At(i, c)) {
							t.Fatalf("%s/%s %dx%d lo(%d,%d): %g vs %g", b.Name, ext, sh[0], sh[1], i, c, wantLo[i], lo.At(i, c))
						}
						if math.Float64bits(wantHi[i]) != math.Float64bits(hi.At(i, c)) {
							t.Fatalf("%s/%s %dx%d hi(%d,%d): %g vs %g", b.Name, ext, sh[0], sh[1], i, c, wantHi[i], hi.At(i, c))
						}
					}
				}
			}
		}
	}
}

// TestColsRangeOverwritesStale verifies the destination rows are used
// as accumulators safely: pre-existing garbage in dst must not leak
// into the results (the arena hands out dirty buffers by design).
func TestColsRangeOverwritesStale(t *testing.T) {
	src := randImage(8, 16, 5)
	b := filter.Daubechies4()
	clean := image.New(4, 16)
	cleanHi := image.New(4, 16)
	AnalyzeColsRange(clean, cleanHi, src, b, filter.Periodic, 0, 16)
	dirty := image.New(4, 16)
	dirtyHi := image.New(4, 16)
	dirty.Fill(math.NaN())
	dirtyHi.Fill(math.Inf(1))
	AnalyzeColsRange(dirty, dirtyHi, src, b, filter.Periodic, 0, 16)
	for r := 0; r < 4; r++ {
		requireBits(t, "lo", clean.Row(r), dirty.Row(r))
		requireBits(t, "hi", cleanHi.Row(r), dirtyHi.Row(r))
	}
}

// TestRowsRangeSubrange checks that range-restricted row filtering fills
// exactly the requested rows, enabling disjoint parallel writes.
func TestRowsRangeSubrange(t *testing.T) {
	src := randImage(8, 16, 6)
	b := filter.Daubechies4()
	full := image.New(8, 8)
	fullHi := image.New(8, 8)
	AnalyzeRowsRange(full, fullHi, src, b, filter.Periodic, 0, 8)
	part := image.New(8, 8)
	partHi := image.New(8, 8)
	AnalyzeRowsRange(part, partHi, src, b, filter.Periodic, 3, 6)
	for r := 3; r < 6; r++ {
		requireBits(t, "lo", full.Row(r), part.Row(r))
	}
	for _, r := range []int{0, 2, 6, 7} {
		for _, v := range part.Row(r) {
			if v != 0 {
				t.Fatalf("row %d outside [3,6) was written", r)
			}
		}
	}
}

// TestArenaReuseAndGrowth: the arena serves shrinking per-level sizes
// from one allocation and grows monotonically for larger images; images
// it returns have tight strides and the requested shape.
func TestArenaReuseAndGrowth(t *testing.T) {
	ar := GetArena()
	defer PutArena(ar)
	l1, h1 := ar.Intermediate(64, 32)
	if l1.Rows != 64 || l1.Cols != 32 || l1.Stride != 32 {
		t.Fatalf("intermediate shape %dx%d stride %d", l1.Rows, l1.Cols, l1.Stride)
	}
	p1 := &l1.Pix[0]
	// A smaller request must reuse the same backing.
	l2, _ := ar.Intermediate(32, 16)
	if &l2.Pix[0] != p1 {
		t.Error("smaller intermediate did not reuse backing")
	}
	// A larger request grows.
	l3, h3 := ar.Intermediate(128, 64)
	if len(l3.Pix) != 128*64 || len(h3.Pix) != 128*64 {
		t.Error("grown intermediate has wrong size")
	}
	_ = h1
	// Ping-pong slots are distinct buffers.
	a := ar.LL(0, 16, 16)
	b := ar.LL(1, 16, 16)
	if &a.Pix[0] == &b.Pix[0] {
		t.Error("LL ping-pong slots share backing")
	}
}

// TestSupported pins the dispatch predicate.
func TestSupported(t *testing.T) {
	if !Supported(filter.Daubechies8(), filter.Periodic) {
		t.Error("db8/periodic unsupported")
	}
	if !Supported(filter.Haar(), filter.Zero) {
		t.Error("haar/zero unsupported")
	}
	if Supported(filter.Haar(), filter.Extension(42)) {
		t.Error("unknown extension claimed supported")
	}
	if Supported(nil, filter.Periodic) {
		t.Error("nil bank claimed supported")
	}
	if Supported(&filter.Bank{Name: "empty"}, filter.Periodic) {
		t.Error("empty bank claimed supported")
	}
}
