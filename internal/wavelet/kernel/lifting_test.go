package kernel

import (
	"math"
	"math/rand"
	"testing"

	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
)

func liftBanks(t *testing.T) []*filter.Bank {
	t.Helper()
	var out []*filter.Bank
	for _, name := range []string{"haar", "cdf5/3", "db4", "db8", "bior4.4", "sym6"} {
		b, err := filter.ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		out = append(out, b)
	}
	return out
}

// TestLiftingSupportedPredicate pins the dispatch predicate: lifting is
// periodic-only (the factorization is a circular-convolution identity),
// and banks whose factorization degenerates (sym7) stay on convolution.
func TestLiftingSupportedPredicate(t *testing.T) {
	db8 := filter.Daubechies8()
	if !LiftingSupported(db8, filter.Periodic) {
		t.Error("db8/periodic: lifting should be supported")
	}
	if LiftingSupported(db8, filter.Symmetric) || LiftingSupported(db8, filter.Zero) {
		t.Error("lifting claimed support for a non-periodic extension")
	}
	if LiftingSupported(nil, filter.Periodic) {
		t.Error("nil bank claimed supported")
	}
	sym7, err := filter.ByName("sym7")
	if err != nil {
		t.Fatal(err)
	}
	if LiftingSupported(sym7, filter.Periodic) {
		t.Error("sym7 factorization is pinned degenerate in internal/filter; LiftingSupported must be false")
	}
}

// TestLiftRowsRangeMatchesReference: the fused row pass must be
// bit-identical to filter.ApplyLifting1D on every row — blocking and
// scattering reorder work across coefficients, never within one.
func TestLiftRowsRangeMatchesReference(t *testing.T) {
	for _, b := range liftBanks(t) {
		sch, err := LiftingScheme(b)
		if err != nil {
			t.Fatalf("LiftingScheme(%s): %v", b.Name, err)
		}
		for _, sh := range [][2]int{{2, 2}, {4, 6}, {8, 2 * PanelWidth}, {6, PanelWidth + 10}} {
			rows, cols := sh[0], sh[1]
			src := randImage(rows, cols, int64(rows*cols))
			ll := image.New(rows/2, cols/2)
			lh := image.New(rows/2, cols/2)
			hl := image.New(rows/2, cols/2)
			hh := image.New(rows/2, cols/2)
			LiftRowsRange(ll, lh, hl, hh, src, sch, 0, rows)
			s := make([]float64, cols/2)
			d := make([]float64, cols/2)
			for r := 0; r < rows; r++ {
				x := src.Row(r)
				for i := range s {
					s[i], d[i] = x[2*i], x[2*i+1]
				}
				filter.ApplyLifting1D(s, d, sch)
				wantS, wantD := ll.Row(r/2), hl.Row(r/2)
				if r%2 == 1 {
					wantS, wantD = lh.Row(r/2), hh.Row(r/2)
				}
				requireBits(t, b.Name+"/s", s, wantS)
				requireBits(t, b.Name+"/d", d, wantD)
			}
		}
	}
}

// TestLiftColsRangeMatchesReference: the panel-blocked in-place column
// pass must be bit-identical to ApplyLifting1D down every column.
func TestLiftColsRangeMatchesReference(t *testing.T) {
	for _, b := range liftBanks(t) {
		sch, err := LiftingScheme(b)
		if err != nil {
			t.Fatalf("LiftingScheme(%s): %v", b.Name, err)
		}
		for _, sh := range [][2]int{{1, 3}, {2, 2}, {5, PanelWidth + 3}, {16, 2*PanelWidth + 1}} {
			half, cols := sh[0], sh[1]
			s := randImage(half, cols, int64(half*7+cols))
			d := randImage(half, cols, int64(half*13+cols))
			wantS := s.Clone()
			wantD := d.Clone()
			LiftColsRange(s, d, sch, 0, cols)
			sc := make([]float64, half)
			dc := make([]float64, half)
			for c := 0; c < cols; c++ {
				sc = wantS.Col(c, sc)
				dc = wantD.Col(c, dc)
				filter.ApplyLifting1D(sc, dc, sch)
				for i := 0; i < half; i++ {
					if math.Float64bits(sc[i]) != math.Float64bits(s.At(i, c)) {
						t.Fatalf("%s %dx%d s(%d,%d): %g vs %g", b.Name, half, cols, i, c, sc[i], s.At(i, c))
					}
					if math.Float64bits(dc[i]) != math.Float64bits(d.At(i, c)) {
						t.Fatalf("%s %dx%d d(%d,%d): %g vs %g", b.Name, half, cols, i, c, dc[i], d.At(i, c))
					}
				}
			}
		}
	}
}

// TestLiftRangesDisjoint: split row and column ranges must reproduce the
// full-range results exactly — the property core.ParallelDecompose
// relies on for lock-free fan-out.
func TestLiftRangesDisjoint(t *testing.T) {
	b := filter.Daubechies8()
	sch, err := LiftingScheme(b)
	if err != nil {
		t.Fatal(err)
	}
	rows, cols := 16, 3*PanelWidth+6
	src := randImage(rows, cols, 71)
	full := [4]*image.Image{}
	split := [4]*image.Image{}
	for i := range full {
		full[i] = image.New(rows/2, cols/2)
		split[i] = image.New(rows/2, cols/2)
	}
	LiftRowsRange(full[0], full[1], full[2], full[3], src, sch, 0, rows)
	// Uneven, odd-boundary row split: every destination row is written
	// exactly once regardless of parity alignment.
	LiftRowsRange(split[0], split[1], split[2], split[3], src, sch, 0, 5)
	LiftRowsRange(split[0], split[1], split[2], split[3], src, sch, 5, 11)
	LiftRowsRange(split[0], split[1], split[2], split[3], src, sch, 11, rows)
	for i := range full {
		for r := 0; r < rows/2; r++ {
			requireBits(t, "rows-split", full[i].Row(r), split[i].Row(r))
		}
	}
	// Column split at non-panel boundaries, applied after copying the
	// row-pass outputs (the column pass is in place).
	fullS, fullD := full[0].Clone(), full[1].Clone()
	splitS, splitD := full[0].Clone(), full[1].Clone()
	LiftColsRange(fullS, fullD, sch, 0, cols/2)
	LiftColsRange(splitS, splitD, sch, 0, 17)
	LiftColsRange(splitS, splitD, sch, 17, PanelWidth+1)
	LiftColsRange(splitS, splitD, sch, PanelWidth+1, cols/2)
	for r := 0; r < rows/2; r++ {
		requireBits(t, "cols-split-s", fullS.Row(r), splitS.Row(r))
		requireBits(t, "cols-split-d", fullD.Row(r), splitD.Row(r))
	}
}

// TestLiftStepsInPlaceOnDirtyArena: like the convolution pass, the
// lifting sweeps must fully overwrite destination garbage (arenas hand
// out dirty buffers by design).
func TestLiftStepsInPlaceOnDirtyArena(t *testing.T) {
	b, err := filter.ByName("cdf5/3")
	if err != nil {
		t.Fatal(err)
	}
	sch, err := LiftingScheme(b)
	if err != nil {
		t.Fatal(err)
	}
	src := randImage(8, 16, 9)
	clean := [4]*image.Image{}
	dirty := [4]*image.Image{}
	for i := range clean {
		clean[i] = image.New(4, 8)
		dirty[i] = image.New(4, 8)
		dirty[i].Fill(math.NaN())
	}
	LiftRowsRange(clean[0], clean[1], clean[2], clean[3], src, sch, 0, 8)
	LiftRowsRange(dirty[0], dirty[1], dirty[2], dirty[3], src, sch, 0, 8)
	for i := range clean {
		for r := 0; r < 4; r++ {
			requireBits(t, "dirty", clean[i].Row(r), dirty[i].Row(r))
		}
	}
}

// TestLiftRowStepFuzzesWrap drives the step helpers across offsets that
// wrap both ends, against a direct modular evaluation.
func TestLiftRowStepFuzzesWrap(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		half := 1 + rng.Intn(12)
		f := 1 + rng.Intn(4)
		st := filter.LiftStep{Lo: rng.Intn(9) - 4, Taps: make([]float64, f)}
		for j := range st.Taps {
			st.Taps[j] = rng.NormFloat64()
		}
		src := make([]float64, half)
		dst := make([]float64, half)
		want := make([]float64, half)
		for i := range src {
			src[i] = rng.NormFloat64()
			dst[i] = rng.NormFloat64()
			want[i] = dst[i]
		}
		for i := 0; i < half; i++ {
			var acc float64
			for j, tp := range st.Taps {
				idx := (i + st.Lo + j) % half
				if idx < 0 {
					idx += half
				}
				acc += tp * src[idx]
			}
			want[i] += acc
		}
		liftRowStep(dst, src, &st)
		requireBits(t, "wrap", want, dst)
	}
}
