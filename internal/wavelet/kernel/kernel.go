// Package kernel provides the fast-path convolution kernels behind the
// shared-memory DWT: cache-blocked column filtering, unrolled row
// filters for the hot banks, and a pooled scratch arena that eliminates
// per-level allocations.
//
// The paper's argument — and this package's reason to exist — is that
// the Mallat transform's memory-access pattern, not its FLOP count,
// decides performance on real machines. The reference implementation in
// internal/wavelet column-filters by gathering one full stride-N column
// at a time, touching a new cache line per element; the kernels here
// instead walk narrow column panels row by row, so every touched cache
// line contributes PanelWidth useful samples.
//
// Bit-identity contract: every kernel performs, for each output
// coefficient, exactly the same sequence of floating-point operations as
// the reference wavelet.AnalyzeStep — accumulation starts at zero and
// adds h[k]·x[·] in ascending k, with the same interior/border split
// (border taps resolved through filter.Extension.Index, out-of-range
// taps skipped). Blocking and unrolling only reorder work *across*
// output coefficients, never within one, so outputs are bit-identical to
// the reference path and the goldens of earlier PRs are preserved. The
// equivalence tests in internal/wavelet enforce this with
// math.Float64bits comparisons.
//
// Inputs are assumed validated (even dimensions, matching shapes); the
// wavelet package checks before dispatching here.
package kernel

import (
	"wavelethpc/internal/filter"
)

// PanelWidth is the column-panel width of the blocked column pass, in
// float64 samples: 64 samples = 512 bytes = 8 cache lines per touched
// row, small enough that one panel's working set (filter-length rows
// plus two destination rows) stays resident in L1 across the overlapping
// filter supports of consecutive output rows.
const PanelWidth = 64

// Supported reports whether the fast path may be dispatched for the
// bank/extension pair. All in-tree extensions are supported for any
// bank with non-empty analysis filters — the channels may have
// different lengths (biorthogonal banks); unknown extension values fall
// back to the reference path, which is the behavioral source of truth.
func Supported(bank *filter.Bank, ext filter.Extension) bool {
	if bank == nil || len(bank.DecLo) == 0 || len(bank.DecHi) == 0 {
		return false
	}
	switch ext {
	case filter.Periodic, filter.Symmetric, filter.Zero:
		return true
	default:
		return false
	}
}
