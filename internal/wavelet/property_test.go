package wavelet

import (
	"math"
	"math/rand"
	"testing"

	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
)

// Property-based suite over randomized (seeded) images: perfect
// reconstruction, Parseval energy preservation for the orthonormal
// banks, and Decompose∘Reconstruct idempotence, each across 1-5 levels.
// These are the invariants the fast-path kernels must not bend even by
// an ulp beyond the reference path's own floating-point error.

// randImage fills a rows×cols image with seeded standard-normal noise —
// unlike the smooth Landsat generator it has full-spectrum energy, so
// detail bands are exercised hard.
func randImage(rows, cols int, seed int64) *image.Image {
	rng := rand.New(rand.NewSource(seed))
	im := image.New(rows, cols)
	for r := 0; r < rows; r++ {
		row := im.Row(r)
		for c := range row {
			row[c] = rng.NormFloat64() * 50
		}
	}
	return im
}

// maxAbsImageDiff returns the largest absolute coefficient difference.
func maxAbsImageDiff(a, b *image.Image) float64 {
	var m float64
	for r := 0; r < a.Rows; r++ {
		ra, rb := a.Row(r), b.Row(r)
		for c := range ra {
			if d := math.Abs(ra[c] - rb[c]); d > m {
				m = d
			}
		}
	}
	return m
}

// TestPropertyPerfectReconstruction: for every bank and 1-5 levels,
// Reconstruct(Decompose(x)) returns x to within 1e-9 max abs error
// under periodic extension.
func TestPropertyPerfectReconstruction(t *testing.T) {
	for _, b := range banks() {
		for levels := 1; levels <= 5; levels++ {
			im := randImage(64, 96, int64(levels)*17)
			p, err := Decompose(im, b, filter.Periodic, levels)
			if err != nil {
				t.Fatalf("%s L=%d: %v", b.Name, levels, err)
			}
			back := Reconstruct(p)
			if diff := maxAbsImageDiff(im, back); diff > 1e-9 {
				t.Errorf("%s L=%d: max abs reconstruction error %g > 1e-9", b.Name, levels, diff)
			}
		}
	}
}

// TestPropertyParseval: orthonormal banks with periodic extension
// preserve total energy at every depth.
func TestPropertyParseval(t *testing.T) {
	for _, b := range banks() {
		if !b.Orthonormal() {
			continue // biorthogonal banks are not isometries
		}
		if err := b.Orthonormality(1e-10); err != nil {
			t.Fatalf("bank %s not orthonormal: %v", b.Name, err)
		}
		for levels := 1; levels <= 5; levels++ {
			im := randImage(96, 64, int64(levels)*29)
			p, err := Decompose(im, b, filter.Periodic, levels)
			if err != nil {
				t.Fatal(err)
			}
			e1, e2 := im.Energy(), p.Energy()
			if math.Abs(e1-e2) > 1e-9*e1 {
				t.Errorf("%s L=%d: energy %g -> %g (rel err %g)", b.Name, levels, e1, e2, math.Abs(e1-e2)/e1)
			}
		}
	}
}

// TestPropertyIdempotence: decomposing a reconstruction reproduces the
// original pyramid — Decompose∘Reconstruct is the identity on
// coefficient space for 1-5 levels. The tolerance is 1e-8 rather than
// the reconstruction gate's 1e-9: coefficients pass through two full
// round trips here, so the floating-point error doubles.
func TestPropertyIdempotence(t *testing.T) {
	for _, b := range banks() {
		for levels := 1; levels <= 5; levels++ {
			im := randImage(64, 64, int64(levels)*41)
			p1, err := Decompose(im, b, filter.Periodic, levels)
			if err != nil {
				t.Fatal(err)
			}
			p2, err := Decompose(Reconstruct(p1), b, filter.Periodic, levels)
			if err != nil {
				t.Fatal(err)
			}
			if diff := maxAbsImageDiff(p1.Approx, p2.Approx); diff > 1e-8 {
				t.Errorf("%s L=%d: approx drift %g", b.Name, levels, diff)
			}
			for i := range p1.Levels {
				for name, pair := range map[string][2]*image.Image{
					"LH": {p1.Levels[i].LH, p2.Levels[i].LH},
					"HL": {p1.Levels[i].HL, p2.Levels[i].HL},
					"HH": {p1.Levels[i].HH, p2.Levels[i].HH},
				} {
					if diff := maxAbsImageDiff(pair[0], pair[1]); diff > 1e-8 {
						t.Errorf("%s L=%d level %d %s drift %g", b.Name, levels, i, name, diff)
					}
				}
			}
		}
	}
}

// TestPropertyFastEqualsReferenceOnNoise re-runs the bit-identity check
// on full-spectrum noise (the equivalence suite uses smooth terrain):
// random images with large detail coefficients must also match bit for
// bit across every extension.
func TestPropertyFastEqualsReferenceOnNoise(t *testing.T) {
	for _, b := range banks() {
		for _, ext := range allExtensions() {
			im := randImage(64, 32, 1234)
			ref, err := DecomposeReference(im, b, ext, 3)
			if err != nil {
				t.Fatal(err)
			}
			fast, err := Decompose(im, b, ext, 3)
			if err != nil {
				t.Fatal(err)
			}
			requirePyramidsBitIdentical(t, b.Name+"/"+ext.String()+"/noise", ref, fast)
		}
	}
}
