package wavelet

import (
	"math"
	"testing"

	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
)

// FuzzLiftingRoundtrip fuzzes shape, depth, bank, and tolerance through
// decompose→reconstruct on the tolerance-gated dispatch. Whatever the
// inputs — hostile eps values (negative, NaN, ±Inf) included — the
// transform must neither panic nor exceed its error contract: the
// roundtrip stays within the accepted tolerance (plus synthesis
// rounding), and a tolerance the lifting tier cannot honor silently
// rides the exact convolution tier. Runs in the CI fuzz smoke alongside
// FuzzReadPGM.
func FuzzLiftingRoundtrip(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(2), uint8(4), 1e-8)
	f.Add(uint8(1), uint8(1), uint8(1), uint8(0), 0.0)
	f.Add(uint8(3), uint8(2), uint8(3), uint8(7), math.NaN())
	f.Add(uint8(4), uint8(4), uint8(2), uint8(16), math.Inf(1))
	f.Add(uint8(7), uint8(5), uint8(1), uint8(9), -1.0)
	f.Add(uint8(2), uint8(2), uint8(3), uint8(13), 1e-300)
	names := filter.Names()
	f.Fuzz(func(t *testing.T, rb, cb, lb uint8, bankIdx uint8, eps float64) {
		levels := 1 + int(lb%3)
		rows := (1 + int(rb%4)) << levels
		cols := (1 + int(cb%4)) << levels
		bank, err := filter.ByName(names[int(bankIdx)%len(names)])
		if err != nil {
			t.Fatal(err)
		}
		im := image.Landsat(rows, cols, uint64(rb)<<16|uint64(cb)<<8|uint64(lb))
		p, err := DecomposeTol(im, bank, filter.Periodic, levels, eps)
		if err != nil {
			t.Fatalf("DecomposeTol(%dx%d, %s, L%d, eps=%v): %v", rows, cols, bank.Name, levels, eps, err)
		}
		rec := Reconstruct(p)
		if rec.Rows != rows || rec.Cols != cols {
			t.Fatalf("roundtrip shape %dx%d, want %dx%d", rec.Rows, rec.Cols, rows, cols)
		}
		var maxDiff, maxRef float64
		for r := 0; r < rows; r++ {
			ra, rb := im.Row(r), rec.Row(r)
			for c := range ra {
				maxDiff = math.Max(maxDiff, math.Abs(ra[c]-rb[c]))
				maxRef = math.Max(maxRef, math.Abs(ra[c]))
			}
		}
		if maxRef == 0 {
			maxRef = 1
		}
		// The accepted drift: whatever tolerance actually engaged the
		// lifting tier (0 when the request rode convolution), plus a
		// synthesis-rounding floor that grows with depth.
		accepted := 0.0
		if sch := LiftingFor(bank, filter.Periodic, eps); sch != nil {
			accepted = eps
			if math.IsInf(accepted, 1) {
				accepted = sch.Eps // Inf accepts anything; the tier still only drifts Eps
			}
		}
		bound := accepted + 1e-9
		if rel := maxDiff / maxRef; rel > bound {
			t.Fatalf("%s %dx%d L%d eps=%v: roundtrip relative error %.3g exceeds %.3g",
				bank.Name, rows, cols, levels, eps, rel, bound)
		}
	})
}
