package wavelet

import (
	"math"
	"math/bits"
	"testing"

	"wavelethpc/internal/image"
)

// directWHT1D is the O(n²) definition the cascade is checked against:
// y[i] = Σ_j (-1)^popcount(i AND j) x[j] / √n, the natural (Hadamard)
// ordering of the orthonormal Walsh–Hadamard transform.
func directWHT1D(x []float64) []float64 {
	n := len(x)
	y := make([]float64, n)
	scale := 1 / math.Sqrt(float64(n))
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			if bits.OnesCount(uint(i&j))%2 == 1 {
				s -= x[j]
			} else {
				s += x[j]
			}
		}
		y[i] = s * scale
	}
	return y
}

func TestWHT1DMatchesDirect(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randSignal(n, int64(n))
		got, err := WHT1D(x)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := directWHT1D(x)
		if diff := maxAbsDiff(got, want); diff > 1e-10 {
			t.Errorf("n=%d: cascade vs direct max abs diff %g", n, diff)
		}
	}
}

func TestWHT1DInvolution(t *testing.T) {
	x := randSignal(128, 99)
	y, err := WHT1D(x)
	if err != nil {
		t.Fatal(err)
	}
	back, err := WHT1D(y)
	if err != nil {
		t.Fatal(err)
	}
	if diff := maxAbsDiff(x, back); diff > 1e-10 {
		t.Errorf("WHT∘WHT drifts from identity by %g", diff)
	}
}

func TestWHT1DParseval(t *testing.T) {
	x := randSignal(256, 5)
	y, err := WHT1D(x)
	if err != nil {
		t.Fatal(err)
	}
	var ex, ey float64
	for i := range x {
		ex += x[i] * x[i]
		ey += y[i] * y[i]
	}
	if math.Abs(ex-ey) > 1e-9*ex {
		t.Errorf("energy %g -> %g", ex, ey)
	}
}

func TestWHT1DDoesNotModifyInput(t *testing.T) {
	x := randSignal(32, 3)
	orig := append([]float64(nil), x...)
	if _, err := WHT1D(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if x[i] != orig[i] {
			t.Fatalf("input modified at %d", i)
		}
	}
}

func TestWHTRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 3, 6, 12, 100} {
		if _, err := WHT1D(make([]float64, n)); err == nil {
			t.Errorf("WHT1D accepted length %d", n)
		}
	}
	if _, err := WHT2D(image.New(16, 24)); err == nil {
		t.Error("WHT2D accepted 24 columns")
	}
	if _, err := WHT2D(image.New(24, 16)); err == nil {
		t.Error("WHT2D accepted 24 rows")
	}
}

// TestWHT2DMatchesSeparable1D: the 2-D transform is the 1-D transform
// over every row followed by every column.
func TestWHT2DMatchesSeparable1D(t *testing.T) {
	im := image.Landsat(16, 32, 13)
	got, err := WHT2D(im)
	if err != nil {
		t.Fatal(err)
	}
	// Rows first...
	tmp := image.New(im.Rows, im.Cols)
	for r := 0; r < im.Rows; r++ {
		y, err := WHT1D(im.Row(r))
		if err != nil {
			t.Fatal(err)
		}
		copy(tmp.Row(r), y)
	}
	// ...then columns.
	want := image.New(im.Rows, im.Cols)
	col := make([]float64, im.Rows)
	for c := 0; c < im.Cols; c++ {
		for r := 0; r < im.Rows; r++ {
			col[r] = tmp.Row(r)[c]
		}
		y, err := WHT1D(col)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < im.Rows; r++ {
			want.Row(r)[c] = y[r]
		}
	}
	var worst float64
	for r := 0; r < im.Rows; r++ {
		rg, rw := got.Row(r), want.Row(r)
		for c := range rg {
			if d := math.Abs(rg[c] - rw[c]); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-10 {
		t.Errorf("2-D vs separable 1-D max abs diff %g", worst)
	}
}

func TestWHT2DInvolution(t *testing.T) {
	im := image.Landsat(32, 32, 21)
	y, err := WHT2D(im)
	if err != nil {
		t.Fatal(err)
	}
	back, err := WHT2D(y)
	if err != nil {
		t.Fatal(err)
	}
	if diff := maxAbsImageDiff(im, back); diff > 1e-9 {
		t.Errorf("WHT2D∘WHT2D drifts from identity by %g", diff)
	}
}
