// Package wavelet implements Mallat's multi-resolution discrete wavelet
// transform: 1-D analysis/synthesis convolution kernels, single-level 2-D
// separable decomposition into LL/LH/HL/HH subbands, and the multi-level
// pyramid the paper applies to Landsat imagery (steps (0)-(5) of its
// Section 2 description).
package wavelet

import (
	"wavelethpc/internal/filter"
)

// AnalyzeStep convolves signal x with filter h and decimates by two:
// out[n] = Σ_k h[k]·x[2n+k], indices extended by ext. len(out) must be
// len(x)/2 and len(x) must be even. dst may be nil, in which case a new
// slice is allocated. Returns the output slice.
func AnalyzeStep(x, h []float64, ext filter.Extension, dst []float64) []float64 {
	n := len(x)
	if n%2 != 0 {
		panic(usage("AnalyzeStep", "AnalyzeStep on odd-length signal %d", n))
	}
	half := n / 2
	if cap(dst) < half {
		dst = make([]float64, half)
	}
	dst = dst[:half]
	if n == 0 {
		return dst
	}
	// Fast path: the filter support 2i..2i+len(h)-1 is fully interior
	// when 2i+len(h) <= n; borders fall back to extension indexing.
	interior := (n - len(h)) / 2 // last i with 2i+len(h)-1 < n
	if n < len(h) {
		// Go's integer division truncates toward zero, so n-len(h) = -1
		// (odd-length filters one tap longer than the signal) would
		// round to 0 and read past the end; clamp to "no interior".
		interior = -1
	}
	for i := 0; i <= interior; i++ {
		base := 2 * i
		var acc float64
		for k, hk := range h {
			acc += hk * x[base+k]
		}
		dst[i] = acc
	}
	for i := interior + 1; i < half; i++ {
		var acc float64
		for k, hk := range h {
			j, ok := ext.Index(2*i+k, n)
			if ok {
				acc += hk * x[j]
			}
		}
		dst[i] = acc
	}
	return dst
}

// SynthesizeStep is the adjoint of AnalyzeStep: it upsamples coefficient
// vector c by two and convolves with h, accumulating into out (which must
// have length 2·len(c)): out[(2n+k) mod N] += h[k]·c[n]. Only the Periodic
// extension gives perfect reconstruction for orthonormal banks; other
// extensions accumulate only in-range taps.
func SynthesizeStep(c, h []float64, ext filter.Extension, out []float64) {
	n := len(out)
	if n != 2*len(c) {
		panic(usage("SynthesizeStep", "SynthesizeStep output length %d, want %d", n, 2*len(c)))
	}
	if n == 0 {
		return
	}
	for i, ci := range c {
		if ci == 0 {
			continue
		}
		base := 2 * i
		if base+len(h) <= n {
			for k, hk := range h {
				out[base+k] += hk * ci
			}
			continue
		}
		for k, hk := range h {
			j, ok := ext.Index(base+k, n)
			if ok {
				out[j] += hk * ci
			}
		}
	}
}

// AnalyzeMACs returns the multiply-accumulate count of one AnalyzeStep over
// a length-n signal with a length-f filter (used by the machine cost
// models).
func AnalyzeMACs(n, f int) int { return n / 2 * f }
