package wavelet

import "fmt"

// UsageError is the typed panic value for wavelet API misuse (odd-length
// signals, mismatched subband shapes, bad output lengths). It mirrors the
// *nx.UsageError / *mesh.RouteError contract enforced by the wavelint
// structerr analyzer: a recovered panic carries the misused entry point
// and the human-readable detail as structure, not a flattened string, so
// harness drivers and the nx scheduler's *RankError wrapper can switch on
// Op. Error() reproduces the exact strings the earlier raw panics
// carried.
type UsageError struct {
	// Op names the misused API entry point, e.g. "AnalyzeRows".
	Op string
	// Detail is the human-readable description (without the "wavelet: "
	// prefix Error adds).
	Detail string
}

// Error implements error.
func (e *UsageError) Error() string { return "wavelet: " + e.Detail }

// usage builds the panic value for an API-misuse check.
//
//wavelint:coldpath error construction runs only on the failing branch
func usage(op, format string, args ...any) *UsageError {
	return &UsageError{Op: op, Detail: fmt.Sprintf(format, args...)}
}
