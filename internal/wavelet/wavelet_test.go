package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
)

func banks() []*filter.Bank {
	// The historical orthonormal quartet plus representatives of every
	// new family: a symlet, the spline biorthogonals, the JPEG-2000
	// pair, and a reversed biorthogonal. Every suite iterating banks()
	// therefore exercises analysis≠synthesis and mixed channel lengths.
	return []*filter.Bank{
		filter.Haar(), filter.Daubechies4(), filter.Daubechies6(), filter.Daubechies8(),
		filter.Symlet(5), filter.Symlet(8),
		filter.Bior22(), filter.Bior44(), filter.CDF53(), filter.Rbio44(),
	}
}

func randSignal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64() * 10
	}
	return x
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

func TestAnalyzeStepHaarAverages(t *testing.T) {
	x := []float64{1, 3, 5, 7}
	b := filter.Haar()
	a := AnalyzeStep(x, b.DecLo, filter.Periodic, nil)
	s := 1 / math.Sqrt2
	want := []float64{s * 4, s * 12}
	if maxAbsDiff(a, want) > 1e-12 {
		t.Errorf("haar approx = %v, want %v", a, want)
	}
	d := AnalyzeStep(x, b.DecHi, filter.Periodic, nil)
	wantD := []float64{s * -2, s * -2}
	if maxAbsDiff(d, wantD) > 1e-12 {
		t.Errorf("haar detail = %v, want %v", d, wantD)
	}
}

func TestAnalyzeStepPanicsOnOddLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on odd-length input")
		}
	}()
	AnalyzeStep(make([]float64, 3), filter.Haar().DecLo, filter.Periodic, nil)
}

func TestAnalyzeStepReusesDst(t *testing.T) {
	x := randSignal(16, 1)
	dst := make([]float64, 8)
	got := AnalyzeStep(x, filter.Haar().DecLo, filter.Periodic, dst)
	if &got[0] != &dst[0] {
		t.Error("AnalyzeStep did not reuse dst")
	}
}

func TestPerfectReconstruction1DOneLevel(t *testing.T) {
	for _, b := range banks() {
		for _, n := range []int{8, 16, 64, 128} {
			x := randSignal(n, int64(n))
			a, d := Analyze1D(x, b, filter.Periodic)
			if len(a) != n/2 || len(d) != n/2 {
				t.Fatalf("%s n=%d: subband lengths %d/%d", b.Name, n, len(a), len(d))
			}
			y := Synthesize1D(a, d, b, filter.Periodic)
			if diff := maxAbsDiff(x, y); diff > 1e-9 {
				t.Errorf("%s n=%d: reconstruction error %g", b.Name, n, diff)
			}
		}
	}
}

func TestPerfectReconstruction1DMultiLevel(t *testing.T) {
	for _, b := range banks() {
		x := randSignal(256, 7)
		for levels := 1; levels <= 5; levels++ {
			dec, err := Decompose1D(x, b, filter.Periodic, levels)
			if err != nil {
				t.Fatalf("%s L=%d: %v", b.Name, levels, err)
			}
			if len(dec.Approx) != 256>>uint(levels) {
				t.Fatalf("%s L=%d: approx len %d", b.Name, levels, len(dec.Approx))
			}
			y := Reconstruct1D(dec)
			if diff := maxAbsDiff(x, y); diff > 1e-9 {
				t.Errorf("%s L=%d: reconstruction error %g", b.Name, levels, diff)
			}
		}
	}
}

func TestDecompose1DErrors(t *testing.T) {
	x := randSignal(12, 1)
	if _, err := Decompose1D(x, filter.Haar(), filter.Periodic, 0); err == nil {
		t.Error("levels=0 accepted")
	}
	if _, err := Decompose1D(x, filter.Haar(), filter.Periodic, 3); err == nil {
		t.Error("12 %% 8 != 0 accepted")
	}
}

func TestParseval1D(t *testing.T) {
	// Orthonormal transform preserves energy. (Biorthogonal banks are
	// not isometries, so only the orthonormal subset applies.)
	for _, b := range banks() {
		if !b.Orthonormal() {
			continue
		}
		x := randSignal(128, 3)
		var ex float64
		for _, v := range x {
			ex += v * v
		}
		dec, err := Decompose1D(x, b, filter.Periodic, 4)
		if err != nil {
			t.Fatal(err)
		}
		var ec float64
		for _, v := range dec.Approx {
			ec += v * v
		}
		for _, det := range dec.Details {
			for _, v := range det {
				ec += v * v
			}
		}
		if math.Abs(ex-ec) > 1e-6*ex {
			t.Errorf("%s: energy %g -> %g", b.Name, ex, ec)
		}
	}
}

func TestConstantSignalDetailVanishes(t *testing.T) {
	// Every registered high-pass has a zero at DC, so a constant signal
	// has vanishing detail; the approx is the constant scaled by the
	// low-pass DC gain (√2 for the orthonormal banks, bank-specific for
	// the biorthogonal normalizations).
	for _, b := range banks() {
		var gain float64
		for _, w := range b.DecLo {
			gain += w
		}
		x := make([]float64, 32)
		for i := range x {
			x[i] = 5
		}
		a, d := Analyze1D(x, b, filter.Periodic)
		for i := range d {
			if math.Abs(d[i]) > 1e-12 {
				t.Errorf("%s: detail[%d] = %g on constant input", b.Name, i, d[i])
			}
			if math.Abs(a[i]-5*gain) > 1e-12 {
				t.Errorf("%s: approx[%d] = %g, want %g", b.Name, i, a[i], 5*gain)
			}
		}
	}
}

func TestPerfectReconstruction2D(t *testing.T) {
	for _, b := range banks() {
		im := image.Landsat(32, 64, 11)
		sb := Analyze2D(im, b, filter.Periodic)
		if sb.LL.Rows != 16 || sb.LL.Cols != 32 {
			t.Fatalf("%s: LL shape %dx%d", b.Name, sb.LL.Rows, sb.LL.Cols)
		}
		back := Synthesize2D(sb, b, filter.Periodic)
		if !image.Equal(im, back, 1e-8) {
			t.Errorf("%s: 2-D reconstruction mismatch", b.Name)
		}
	}
}

func TestPyramidRoundTripAllPaperConfigs(t *testing.T) {
	// The paper's three configurations: F8/L1, F4/L2, F2/L4.
	im := image.Landsat(64, 64, 5)
	configs := []struct {
		bank   *filter.Bank
		levels int
	}{
		{filter.Daubechies8(), 1},
		{filter.Daubechies4(), 2},
		{filter.Haar(), 4},
	}
	for _, cfg := range configs {
		p, err := Decompose(im, cfg.bank, filter.Periodic, cfg.levels)
		if err != nil {
			t.Fatalf("%s/L%d: %v", cfg.bank.Name, cfg.levels, err)
		}
		if p.Depth() != cfg.levels {
			t.Fatalf("depth = %d", p.Depth())
		}
		back := Reconstruct(p)
		if !image.Equal(im, back, 1e-8) {
			t.Errorf("%s/L%d: reconstruction mismatch", cfg.bank.Name, cfg.levels)
		}
	}
}

func TestPyramidShapes(t *testing.T) {
	im := image.Landsat(64, 32, 1)
	p, err := Decompose(im, filter.Haar(), filter.Periodic, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Approx.Rows != 8 || p.Approx.Cols != 4 {
		t.Errorf("approx %dx%d, want 8x4", p.Approx.Rows, p.Approx.Cols)
	}
	// Levels are coarsest-first.
	wantRows := []int{8, 16, 32}
	for i, d := range p.Levels {
		if d.LH.Rows != wantRows[i] {
			t.Errorf("level %d LH rows = %d, want %d", i, d.LH.Rows, wantRows[i])
		}
	}
}

func TestDecomposeErrors(t *testing.T) {
	im := image.New(48, 64)
	if _, err := Decompose(im, filter.Haar(), filter.Periodic, 5); err == nil {
		t.Error("48 not divisible by 32 accepted")
	}
	if _, err := Decompose(im, filter.Haar(), filter.Periodic, 0); err == nil {
		t.Error("levels=0 accepted")
	}
}

func TestParseval2D(t *testing.T) {
	im := image.Landsat(64, 64, 9)
	p, err := Decompose(im, filter.Daubechies8(), filter.Periodic, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e1, e2 := im.Energy(), p.Energy(); math.Abs(e1-e2) > 1e-6*e1 {
		t.Errorf("energy %g -> %g", e1, e2)
	}
}

func TestEnergyCompactionOnTerrain(t *testing.T) {
	// Terrain-like imagery concentrates energy in the approximation band;
	// a 3-level D8 decomposition should put the large majority of energy
	// into 1/64 of the coefficients.
	im := image.Landsat(128, 128, 20)
	p, err := Decompose(im, filter.Daubechies8(), filter.Periodic, 3)
	if err != nil {
		t.Fatal(err)
	}
	frac := p.Approx.Energy() / p.Energy()
	if frac < 0.9 {
		t.Errorf("approx band holds only %.1f%% of energy", frac*100)
	}
}

func TestMosaicLayout(t *testing.T) {
	im := image.Landsat(32, 32, 2)
	p, err := Decompose(im, filter.Haar(), filter.Periodic, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := p.Mosaic()
	if m.Rows != 32 || m.Cols != 32 {
		t.Fatalf("mosaic %dx%d", m.Rows, m.Cols)
	}
	// Top-left pixel of mosaic equals top-left of approximation.
	if m.At(0, 0) != p.Approx.At(0, 0) {
		t.Error("mosaic top-left != approx top-left")
	}
	// HH of finest level lands in the bottom-right quadrant.
	fin := p.Levels[len(p.Levels)-1]
	if m.At(16, 16) != fin.HH.At(0, 0) {
		t.Error("mosaic bottom-right quadrant != finest HH")
	}
}

func TestThreshold(t *testing.T) {
	im := image.Landsat(64, 64, 8)
	p, err := Decompose(im, filter.Daubechies4(), filter.Periodic, 2)
	if err != nil {
		t.Fatal(err)
	}
	kept, total := p.Threshold(1e18) // zero everything
	if kept != 0 {
		t.Errorf("kept %d detail coeffs after infinite threshold", kept)
	}
	wantTotal := 3 * (32*32 + 16*16)
	if total != wantTotal {
		t.Errorf("total = %d, want %d", total, wantTotal)
	}
	// Reconstruction from approx only still resembles the input (low-pass).
	back := Reconstruct(p)
	if psnr := image.PSNR(im, back); psnr < 20 {
		t.Errorf("approx-only PSNR = %.1f dB, want >= 20", psnr)
	}
}

func TestThresholdZeroKeepsNonzeros(t *testing.T) {
	im := image.Landsat(32, 32, 8)
	p, _ := Decompose(im, filter.Haar(), filter.Periodic, 1)
	before := p.Energy()
	kept, total := p.Threshold(0)
	if kept == 0 || kept > total {
		t.Errorf("kept=%d total=%d", kept, total)
	}
	if math.Abs(p.Energy()-before) > 1e-9 {
		t.Error("Threshold(0) changed energy")
	}
}

func TestMACCounts(t *testing.T) {
	if got := AnalyzeMACs(512, 8); got != 2048 {
		t.Errorf("AnalyzeMACs(512,8) = %d, want 2048", got)
	}
	// One level on 512x512 with f taps: rows 2*512*(256f) + cols 2*2*256*(256f).
	f := 8
	want := 2*512*256*f + 4*256*256*f
	if got := Level2DMACs(512, 512, f); got != want {
		t.Errorf("Level2DMACs = %d, want %d", got, want)
	}
	// Multi-level sums shrink 4x per level.
	l1 := DecomposeMACs(512, 512, 2, 1)
	l2 := DecomposeMACs(512, 512, 2, 2)
	if l2 <= l1 || l2-l1 != DecomposeMACs(256, 256, 2, 1) {
		t.Errorf("DecomposeMACs inconsistent: L1=%d L2=%d", l1, l2)
	}
}

func TestSynthesizeStepPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on bad output length")
		}
	}()
	SynthesizeStep(make([]float64, 4), filter.Haar().DecLo, filter.Periodic, make([]float64, 7))
}

func TestRoundTripPropertyQuick(t *testing.T) {
	// Property: decompose∘reconstruct is identity for random signals,
	// any bank, any valid level count.
	f := func(seed int64, bankIdx uint8, levelRaw uint8) bool {
		b := banks()[int(bankIdx)%len(banks())]
		levels := int(levelRaw)%4 + 1
		x := randSignal(64, seed)
		dec, err := Decompose1D(x, b, filter.Periodic, levels)
		if err != nil {
			return false
		}
		return maxAbsDiff(x, Reconstruct1D(dec)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLinearityProperty(t *testing.T) {
	// DWT is linear: T(ax + by) = aT(x) + bT(y).
	b := filter.Daubechies4()
	x := randSignal(32, 1)
	y := randSignal(32, 2)
	sum := make([]float64, 32)
	for i := range sum {
		sum[i] = 2*x[i] + 3*y[i]
	}
	ax, dx := Analyze1D(x, b, filter.Periodic)
	ay, dy := Analyze1D(y, b, filter.Periodic)
	as, ds := Analyze1D(sum, b, filter.Periodic)
	for i := range as {
		if math.Abs(as[i]-(2*ax[i]+3*ay[i])) > 1e-9 {
			t.Fatalf("approx nonlinearity at %d", i)
		}
		if math.Abs(ds[i]-(2*dx[i]+3*dy[i])) > 1e-9 {
			t.Fatalf("detail nonlinearity at %d", i)
		}
	}
}

func TestShiftBy2Covariance(t *testing.T) {
	// A circular shift of the input by 2 shifts level-1 coefficients by 1.
	b := filter.Daubechies8()
	x := randSignal(64, 4)
	shifted := make([]float64, 64)
	for i := range x {
		shifted[(i+2)%64] = x[i]
	}
	a1, d1 := Analyze1D(x, b, filter.Periodic)
	a2, d2 := Analyze1D(shifted, b, filter.Periodic)
	for i := range a1 {
		j := (i + 1) % 32
		if math.Abs(a2[j]-a1[i]) > 1e-9 || math.Abs(d2[j]-d1[i]) > 1e-9 {
			t.Fatalf("shift covariance broken at %d", i)
		}
	}
}

func TestSymmetricAndZeroExtensionsRun(t *testing.T) {
	// Non-periodic extensions won't perfectly reconstruct with orthonormal
	// banks, but they must run and keep interior coefficients identical.
	x := randSignal(64, 6)
	b := filter.Daubechies8()
	ap, _ := Analyze1D(x, b, filter.Periodic)
	as, _ := Analyze1D(x, b, filter.Symmetric)
	az, _ := Analyze1D(x, b, filter.Zero)
	// Interior outputs (filter support fully inside) agree across
	// extensions.
	for i := 0; i < (64-8)/2; i++ {
		if ap[i] != as[i] || ap[i] != az[i] {
			t.Fatalf("interior coefficient %d differs across extensions", i)
		}
	}
}

func TestPadToDecomposable(t *testing.T) {
	im := image.Landsat(50, 70, 3)
	padded, r0, c0 := PadToDecomposable(im, 3)
	if r0 != 50 || c0 != 70 {
		t.Errorf("orig size %dx%d", r0, c0)
	}
	if padded.Rows != 56 || padded.Cols != 72 {
		t.Fatalf("padded to %dx%d, want 56x72", padded.Rows, padded.Cols)
	}
	// Interior preserved.
	if !image.Equal(padded.Sub(0, 0, 50, 70), im, 0) {
		t.Error("padding altered original pixels")
	}
	// Border is a reflection, not zeros.
	if padded.At(50, 0) != im.At(49, 0) {
		t.Errorf("reflective pad wrong: %g vs %g", padded.At(50, 0), im.At(49, 0))
	}
	// Already-decomposable images pass through unchanged.
	sq := image.Landsat(64, 64, 1)
	same, _, _ := PadToDecomposable(sq, 3)
	if same != sq {
		t.Error("decomposable image was copied")
	}
}

func TestPadDecomposeCropRoundTrip(t *testing.T) {
	im := image.Landsat(50, 70, 4)
	padded, r0, c0 := PadToDecomposable(im, 2)
	p, err := Decompose(padded, filter.Daubechies4(), filter.Periodic, 2)
	if err != nil {
		t.Fatal(err)
	}
	back := Crop(Reconstruct(p), r0, c0)
	if !image.Equal(im, back, 1e-8) {
		t.Error("pad/decompose/reconstruct/crop round trip failed")
	}
}

func TestDecomposition1DLevels(t *testing.T) {
	x := randSignal(32, 40)
	dec, err := Decompose1D(x, filter.Haar(), filter.Periodic, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Levels() != 3 {
		t.Errorf("Levels() = %d", dec.Levels())
	}
}
