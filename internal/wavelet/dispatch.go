package wavelet

import (
	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
	"wavelethpc/internal/wavelet/kernel"
)

// Decompose runs the full multi-resolution algorithm of the paper's
// Section 2. It auto-dispatches by bank and extension: supported
// combinations go through the cache-blocked, arena-backed kernels of
// internal/wavelet/kernel (bit-identical to the reference, see
// DecomposeReference), anything else falls back to the reference path.
func Decompose(im *image.Image, bank *filter.Bank, ext filter.Extension, levels int) (*Pyramid, error) {
	if err := CheckDecomposable(im.Rows, im.Cols, levels); err != nil {
		return nil, err
	}
	if !kernel.Supported(bank, ext) {
		return DecomposeReference(im, bank, ext, levels)
	}
	p := NewPyramid(im.Rows, im.Cols, bank, ext, levels)
	ar := kernel.GetArena()
	decomposeFast(p, im, ar)
	kernel.PutArena(ar)
	return p, nil
}

// NewPyramid allocates the shell of a levels-deep decomposition of a
// rows×cols image: zeroed detail bands (coarsest-first, the Levels
// convention) and approximation, ready to be filled in place by the
// fast-path kernels or the parallel drivers in internal/core. The
// dimensions must already be decomposable.
//
//wavelint:coldpath allocating constructor, runs only on first use or shape change
func NewPyramid(rows, cols int, bank *filter.Bank, ext filter.Extension, levels int) *Pyramid {
	p := &Pyramid{Bank: bank, Ext: ext, Levels: make([]DetailBands, levels)}
	for l := 0; l < levels; l++ {
		rows /= 2
		cols /= 2
		p.Levels[levels-1-l] = DetailBands{
			LH: image.New(rows, cols),
			HL: image.New(rows, cols),
			HH: image.New(rows, cols),
		}
	}
	p.Approx = image.New(rows, cols)
	return p
}

// decomposeFast fills the preallocated pyramid p from im through the
// kernel fast path, using ar for every intermediate. Only the detail
// bands and the final approximation live in p; the per-level L/H images
// and the intermediate LL chain stay inside the arena, so nothing is
// allocated per level.
func decomposeFast(p *Pyramid, im *image.Image, ar *kernel.Arena) {
	levels := len(p.Levels)
	cur := im
	for l := 0; l < levels; l++ {
		rows, cols := cur.Rows, cur.Cols
		li, hi := ar.Intermediate(rows, cols/2)
		kernel.AnalyzeRowsRange(li, hi, cur, p.Bank, p.Ext, 0, rows)
		d := &p.Levels[levels-1-l]
		ll := p.Approx
		if l < levels-1 {
			ll = ar.LL(l%2, rows/2, cols/2)
		}
		kernel.AnalyzeColsRange(ll, d.LH, li, p.Bank, p.Ext, 0, cols/2)
		kernel.AnalyzeColsRange(d.HL, d.HH, hi, p.Bank, p.Ext, 0, cols/2)
		cur = ll
	}
}

// Decomposer is the steady-state fast path: it owns both the scratch
// arena and the output pyramid, reusing them across calls so repeated
// same-shape decompositions allocate nothing. The returned pyramid is
// overwritten by the next Decompose call — callers that need to retain
// results across calls must copy them (or use the allocating Decompose).
// A Decomposer is not safe for concurrent use; give each goroutine its
// own.
type Decomposer struct {
	bank       *filter.Bank
	ext        filter.Extension
	levels     int
	ar         kernel.Arena
	p          *Pyramid
	rows, cols int
	// sch, when non-nil, routes Decompose through the lifting tier
	// (resolved once by NewDecomposerTol; nil keeps the bit-identical
	// convolution tier).
	sch *filter.LiftingScheme
}

// NewDecomposer builds a reusable decomposer for the given bank,
// extension, and depth.
func NewDecomposer(bank *filter.Bank, ext filter.Extension, levels int) *Decomposer {
	return &Decomposer{bank: bank, ext: ext, levels: levels}
}

// Decompose decomposes im, reusing the decomposer's buffers. The first
// call (and any call after a shape change) sizes them; subsequent calls
// are allocation-free. Unsupported bank/extension combinations fall back
// to the allocating reference path.
func (d *Decomposer) Decompose(im *image.Image) (*Pyramid, error) {
	if err := CheckDecomposable(im.Rows, im.Cols, d.levels); err != nil {
		return nil, err
	}
	if !kernel.Supported(d.bank, d.ext) {
		return DecomposeReference(im, d.bank, d.ext, d.levels)
	}
	if d.p == nil || d.rows != im.Rows || d.cols != im.Cols {
		d.p = NewPyramid(im.Rows, im.Cols, d.bank, d.ext, d.levels)
		d.rows, d.cols = im.Rows, im.Cols
	}
	if d.sch != nil {
		decomposeLifting(d.p, im, &d.ar, d.sch)
	} else {
		decomposeFast(d.p, im, &d.ar)
	}
	return d.p, nil
}
