package wavelet

import (
	"math"
	"testing"

	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
)

// Perfect-reconstruction properties for every registered bank — the
// acceptance gate of the biorthogonal generalization. Periodic
// extension admits exact PR everywhere (the analysis operator is
// invertible on the circle); Symmetric and Zero extensions distort the
// borders under plain adjoint synthesis, but any sample whose analysis
// and synthesis footprints stay in range must still reconstruct
// exactly, so those are checked on the interior.

// decomposableShapes pairs even/odd-factor shapes with the deepest
// level each admits: dimensions like 34 = 2·17 and 52 = 4·13 keep the
// sub-band sizes odd after one halving, exercising the non-power-of-two
// paths.
var decomposableShapes = []struct {
	rows, cols, levels int
}{
	{34, 52, 1},  // odd half-sizes after one level
	{52, 34, 1},  // transposed
	{40, 56, 2},  // 8·5 and 8·7
	{64, 96, 3},  // the classic rectangular case
	{32, 32, 2},  // square power of two
	{128, 64, 4}, // deep pyramid
}

func TestEveryBankPerfectReconstructionPeriodic(t *testing.T) {
	for _, name := range filter.Names() {
		b, err := filter.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, sh := range decomposableShapes {
			im := randImage(sh.rows, sh.cols, int64(sh.rows*1000+sh.cols))
			p, err := Decompose(im, b, filter.Periodic, sh.levels)
			if err != nil {
				t.Fatalf("%s %dx%d L=%d: %v", name, sh.rows, sh.cols, sh.levels, err)
			}
			back := Reconstruct(p)
			if diff := maxAbsImageDiff(im, back); diff > 1e-9 {
				t.Errorf("%s %dx%d L=%d: max abs reconstruction error %g > 1e-9",
					name, sh.rows, sh.cols, sh.levels, diff)
			}
		}
	}
}

// TestEveryBankInteriorReconstruction: under Symmetric and Zero
// extension the borders are lossy, but samples further than
// DecLen+RecLen from either edge see exactly the periodic arithmetic in
// a single-level transform, so the interior must reconstruct to
// machine precision for every bank.
func TestEveryBankInteriorReconstruction(t *testing.T) {
	for _, name := range filter.Names() {
		b, err := filter.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		margin := b.DecLen() + b.RecLen()
		for _, ext := range []filter.Extension{filter.Symmetric, filter.Zero} {
			im := randImage(64, 96, 7331)
			p, err := Decompose(im, b, ext, 1)
			if err != nil {
				t.Fatal(err)
			}
			back := Reconstruct(p)
			var worst float64
			for r := margin; r < im.Rows-margin; r++ {
				ra, rb := im.Row(r), back.Row(r)
				for c := margin; c < im.Cols-margin; c++ {
					if d := math.Abs(ra[c] - rb[c]); d > worst {
						worst = d
					}
				}
			}
			if worst > 1e-9 {
				t.Errorf("%s/%v: interior reconstruction error %g > 1e-9", name, ext, worst)
			}
		}
	}
}

// TestEveryBankFastEqualsReference extends the bit-identity contract to
// the full catalog: the dispatched fast path (including the split
// kernels for mixed channel lengths) must match the reference path bit
// for bit for every registered bank.
func TestEveryBankFastEqualsReference(t *testing.T) {
	for _, name := range filter.Names() {
		b, err := filter.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, ext := range allExtensions() {
			im := randImage(48, 64, 424242)
			ref, err := DecomposeReference(im, b, ext, 2)
			if err != nil {
				t.Fatal(err)
			}
			fast, err := Decompose(im, b, ext, 2)
			if err != nil {
				t.Fatal(err)
			}
			requirePyramidsBitIdentical(t, name+"/"+ext.String(), ref, fast)
		}
	}
}

// TestDecomposerSteadyStateAllocsBior repeats the zero-allocation gate
// with a biorthogonal bank: mixed analysis lengths (9/9 here, 8/10 for
// rbio4.4) must not knock the Decomposer off its arena.
func TestDecomposerSteadyStateAllocsBior(t *testing.T) {
	for _, name := range []string{"bior4.4", "rbio4.4", "cdf5/3"} {
		b, err := filter.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		im := image.Landsat(128, 128, 42)
		d := NewDecomposer(b, filter.Periodic, 3)
		if _, err := d.Decompose(im); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := d.Decompose(im); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 0 {
			t.Errorf("%s: steady-state Decomposer allocates %.1f objects/op, want 0", name, allocs)
		}
	}
}
