package wavelet

import (
	"fmt"
	"math/bits"

	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
	"wavelethpc/internal/wavelet/kernel"
)

// Walsh–Hadamard transform built from the wavelet machinery: a full
// Haar wavelet-packet cascade followed by a bit-reversal permutation.
//
// One orthonormal Haar analysis of a length-m block is exactly one
// stage of 1/√2-normalized Hadamard butterflies with the sums gathered
// in the low half and the differences in the high half. Cascading the
// analysis over every sub-block for log2(n) stages therefore computes
// all n Hadamard coefficients, in bit-reversed order: by induction on
// H_n = H_{n/2} ⊗ H_2, the cascade coefficient at position p equals
// (H_n·x)[bitrev(p)], where H_n(i,j) = (-1)^popcount(i AND j)/√n is the
// natural (Hadamard) ordering. The blocks run through the same
// internal/wavelet/kernel row/column kernels as the pyramid transform —
// the WHT is a second transform on the shared kernel layer, not a
// separate convolution stack.
//
// With the 1/√2 normalization H_n is symmetric and orthogonal, so the
// transform is an involution: applying it twice returns the input (up
// to floating-point roundoff).

// checkWHTSize validates a Walsh–Hadamard dimension: a positive power
// of two.
func checkWHTSize(what string, n int) error {
	if n < 1 || n&(n-1) != 0 {
		return fmt.Errorf("wavelet: WHT %s %d is not a power of two", what, n)
	}
	return nil
}

// WHT1D computes the orthonormal Walsh–Hadamard transform of x in
// natural (Hadamard) ordering. len(x) must be a power of two. The input
// is not modified. The transform is its own inverse.
func WHT1D(x []float64) ([]float64, error) {
	n := len(x)
	if err := checkWHTSize("length", n); err != nil {
		return nil, err
	}
	bank := filter.Haar()
	cur := append([]float64(nil), x...)
	next := make([]float64, n)
	// Haar packet cascade: stage s splits each size-m block into lo|hi
	// halves through the shared row kernel.
	for m := n; m > 1; m /= 2 {
		for b := 0; b < n; b += m {
			blk := cur[b : b+m]
			kernel.AnalyzeRow(blk, bank, filter.Periodic, next[b:b+m/2], next[b+m/2:b+m])
		}
		cur, next = next, cur
	}
	// Undo the bit-reversed ordering of the packet leaves.
	out := make([]float64, n)
	shift := uint(64 - bits.Len(uint(n-1)))
	if n == 1 {
		out[0] = cur[0]
		return out, nil
	}
	for k := 0; k < n; k++ {
		out[k] = cur[bits.Reverse64(uint64(k))>>shift]
	}
	return out, nil
}

// WHT2D computes the separable orthonormal 2-D Walsh–Hadamard transform
// of im in natural ordering: the 1-D transform applied along the rows
// and then along the columns. Both dimensions must be powers of two.
// The input is not modified, and the transform is its own inverse.
func WHT2D(im *image.Image) (*image.Image, error) {
	if err := checkWHTSize("row count", im.Rows); err != nil {
		return nil, err
	}
	if err := checkWHTSize("column count", im.Cols); err != nil {
		return nil, err
	}
	bank := filter.Haar()
	cur := im.Clone()
	next := image.New(im.Rows, im.Cols)

	// Row cascade: stage over column-block views through the shared
	// panel kernels; each block is a strided Sub view, no copies.
	for m := im.Cols; m > 1; m /= 2 {
		for b := 0; b < im.Cols; b += m {
			src := cur.Sub(0, b, im.Rows, m)
			l := next.Sub(0, b, im.Rows, m/2)
			h := next.Sub(0, b+m/2, im.Rows, m/2)
			kernel.AnalyzeRowsRange(l, h, src, bank, filter.Periodic, 0, im.Rows)
		}
		cur, next = next, cur
	}
	// Column cascade over row-slab views.
	for m := im.Rows; m > 1; m /= 2 {
		for b := 0; b < im.Rows; b += m {
			src := cur.Sub(b, 0, m, im.Cols)
			lo := next.Sub(b, 0, m/2, im.Cols)
			hi := next.Sub(b+m/2, 0, m/2, im.Cols)
			kernel.AnalyzeColsRange(lo, hi, src, bank, filter.Periodic, 0, im.Cols)
		}
		cur, next = next, cur
	}

	// Undo bit reversal along both axes.
	out := image.New(im.Rows, im.Cols)
	rIdx := bitrevIndex(im.Rows)
	cIdx := bitrevIndex(im.Cols)
	for r := 0; r < im.Rows; r++ {
		src := cur.Row(rIdx[r])
		dst := out.Row(r)
		for c := 0; c < im.Cols; c++ {
			dst[c] = src[cIdx[c]]
		}
	}
	return out, nil
}

// bitrevIndex returns the bit-reversal permutation of [0,n) for a
// power-of-two n.
func bitrevIndex(n int) []int {
	idx := make([]int, n)
	if n == 1 {
		return idx
	}
	shift := uint(64 - bits.Len(uint(n-1)))
	for i := range idx {
		idx[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
	return idx
}
