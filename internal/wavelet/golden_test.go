package wavelet

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"testing"

	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
)

// Golden pins for the orthonormal banks: FNV-64a digests of the exact
// Float64bits of every pyramid coefficient, frozen at the introduction
// of the biorthogonal bank model. Any change to these hashes means the
// refactor (or a later change) altered the numerical output of the
// historical haar/db4/db6/db8 paths by at least one ulp — which the
// bit-identity contract forbids. Both the reference path and the
// dispatched fast path must land on the same digest.

// pyramidDigest hashes Approx rows first, then LH/HL/HH per level, each
// coefficient as its little-endian IEEE-754 bit pattern.
func pyramidDigest(p *Pyramid) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeImage := func(im *image.Image) {
		for r := 0; r < im.Rows; r++ {
			for _, v := range im.Row(r) {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
				h.Write(buf[:])
			}
		}
	}
	writeImage(p.Approx)
	for i := range p.Levels {
		writeImage(p.Levels[i].LH)
		writeImage(p.Levels[i].HL)
		writeImage(p.Levels[i].HH)
	}
	return h.Sum64()
}

func TestGoldenOrthonormalDigests(t *testing.T) {
	cases := []struct {
		bank   string
		ext    filter.Extension
		levels int
		want   uint64
	}{
		{"haar", filter.Periodic, 1, 0x79af62118ea2ef81},
		{"haar", filter.Periodic, 3, 0x0353880c7dfeeb1e},
		{"haar", filter.Symmetric, 1, 0x79af62118ea2ef81},
		{"haar", filter.Symmetric, 3, 0x0353880c7dfeeb1e},
		{"haar", filter.Zero, 1, 0x79af62118ea2ef81},
		{"haar", filter.Zero, 3, 0x0353880c7dfeeb1e},
		{"db4", filter.Periodic, 1, 0x5e4a4a0785037637},
		{"db4", filter.Periodic, 3, 0x2db031110684a668},
		{"db4", filter.Symmetric, 1, 0x4a07bd76a225283f},
		{"db4", filter.Symmetric, 3, 0x5564425b399782e3},
		{"db4", filter.Zero, 1, 0x67a8bbde070ba663},
		{"db4", filter.Zero, 3, 0x281118f9cd57fe18},
		{"db6", filter.Periodic, 1, 0xc698935520b64bb5},
		{"db6", filter.Periodic, 3, 0xc4fc7af460985ca6},
		{"db6", filter.Symmetric, 1, 0x24ee9966664054d3},
		{"db6", filter.Symmetric, 3, 0x96edc6eb01a3b351},
		{"db6", filter.Zero, 1, 0x623dddf70621010c},
		{"db6", filter.Zero, 3, 0xc9d911d45392c7f2},
		{"db8", filter.Periodic, 1, 0x1c848f0b4e110f59},
		{"db8", filter.Periodic, 3, 0xb7a6638efe8cb29f},
		{"db8", filter.Symmetric, 1, 0x980c36c3f328a3cb},
		{"db8", filter.Symmetric, 3, 0x9a7eaef983f1991e},
		{"db8", filter.Zero, 1, 0x2c9db16801101404},
		{"db8", filter.Zero, 3, 0x49aa83319b8ee34e},
	}
	im := image.Landsat(48, 32, 7)
	for _, tc := range cases {
		b, err := filter.ByName(tc.bank)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := DecomposeReference(im, b, tc.ext, tc.levels)
		if err != nil {
			t.Fatalf("%s/%v/L%d: %v", tc.bank, tc.ext, tc.levels, err)
		}
		if got := pyramidDigest(ref); got != tc.want {
			t.Errorf("%s/%v/L%d reference digest = %#016x, want %#016x",
				tc.bank, tc.ext, tc.levels, got, tc.want)
		}
		fast, err := Decompose(im, b, tc.ext, tc.levels)
		if err != nil {
			t.Fatal(err)
		}
		if got := pyramidDigest(fast); got != tc.want {
			t.Errorf("%s/%v/L%d fast-path digest = %#016x, want %#016x",
				tc.bank, tc.ext, tc.levels, got, tc.want)
		}
		// The tolerance-gated entry point with tol = 0 must keep the
		// bit-identical convolution tier — the default path cannot
		// silently change when the lifting tier is present.
		tol0, err := DecomposeTol(im, b, tc.ext, tc.levels, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := pyramidDigest(tol0); got != tc.want {
			t.Errorf("%s/%v/L%d tol=0 digest = %#016x, want %#016x",
				tc.bank, tc.ext, tc.levels, got, tc.want)
		}
	}
}
