package wavelet

import (
	"fmt"

	"wavelethpc/internal/filter"
)

// Analyze1D performs one level of 1-D wavelet analysis, returning the
// approximation (low-pass) and detail (high-pass) coefficient vectors,
// each of half the input length. The input length must be even.
func Analyze1D(x []float64, bank *filter.Bank, ext filter.Extension) (approx, detail []float64) {
	approx = AnalyzeStep(x, bank.DecLo, ext, nil)
	detail = AnalyzeStep(x, bank.DecHi, ext, nil)
	return approx, detail
}

// Synthesize1D inverts Analyze1D, reconstructing the signal of length
// 2·len(approx) from one level of coefficients. approx and detail must
// have equal length.
func Synthesize1D(approx, detail []float64, bank *filter.Bank, ext filter.Extension) []float64 {
	if len(approx) != len(detail) {
		panic(usage("Synthesize1D", "Synthesize1D length mismatch %d vs %d", len(approx), len(detail)))
	}
	out := make([]float64, 2*len(approx))
	SynthesizeStep(approx, bank.RecLo, ext, out)
	SynthesizeStep(detail, bank.RecHi, ext, out)
	return out
}

// Decomposition1D holds a multi-level 1-D wavelet decomposition: the
// final approximation plus detail vectors ordered coarsest-first.
type Decomposition1D struct {
	// Approx is the level-L approximation (length n / 2^L).
	Approx []float64
	// Details[i] is the detail vector of level L-i; Details[0] is the
	// coarsest.
	Details [][]float64
	Bank    *filter.Bank
	Ext     filter.Extension
}

// Levels returns the number of decomposition levels.
func (d *Decomposition1D) Levels() int { return len(d.Details) }

// Decompose1D performs a levels-deep Mallat decomposition of x. The input
// length must be divisible by 2^levels.
func Decompose1D(x []float64, bank *filter.Bank, ext filter.Extension, levels int) (*Decomposition1D, error) {
	if levels < 1 {
		return nil, fmt.Errorf("wavelet: levels = %d, want >= 1", levels)
	}
	if len(x)%(1<<uint(levels)) != 0 {
		return nil, fmt.Errorf("wavelet: length %d not divisible by 2^%d", len(x), levels)
	}
	d := &Decomposition1D{Bank: bank, Ext: ext, Details: make([][]float64, levels)}
	cur := x
	for l := 0; l < levels; l++ {
		a, det := Analyze1D(cur, bank, ext)
		d.Details[levels-1-l] = det
		cur = a
	}
	d.Approx = cur
	return d, nil
}

// Reconstruct1D inverts Decompose1D.
func Reconstruct1D(d *Decomposition1D) []float64 {
	cur := d.Approx
	for _, det := range d.Details {
		cur = Synthesize1D(cur, det, d.Bank, d.Ext)
	}
	return cur
}
