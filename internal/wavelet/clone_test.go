package wavelet

import (
	"testing"

	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
)

// TestPyramidCloneIndependence: a clone is bit-identical to its source
// and fully detached — mutating the source afterwards (as a pooled
// Decomposer does on reuse) must not reach the clone.
func TestPyramidCloneIndependence(t *testing.T) {
	im := image.Landsat(32, 32, 13)
	p, err := Decompose(im, filter.Daubechies4(), filter.Periodic, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	if c.Bank != p.Bank || c.Ext != p.Ext || c.Depth() != p.Depth() {
		t.Fatalf("clone metadata differs: %v/%v depth %d vs %d", c.Bank.Name, p.Bank.Name, c.Depth(), p.Depth())
	}
	if !image.EqualBits(p.Approx, c.Approx) {
		t.Fatal("clone approximation differs")
	}
	for i := range p.Levels {
		if !image.EqualBits(p.Levels[i].LH, c.Levels[i].LH) ||
			!image.EqualBits(p.Levels[i].HL, c.Levels[i].HL) ||
			!image.EqualBits(p.Levels[i].HH, c.Levels[i].HH) {
			t.Fatalf("clone detail level %d differs", i)
		}
	}

	before := c.Approx.At(0, 0)
	p.Approx.Set(0, 0, before+1e6)
	p.Levels[0].HH.Set(0, 0, -1e6)
	if c.Approx.At(0, 0) != before {
		t.Fatal("clone shares approximation storage with source")
	}
	if c.Levels[0].HH.At(0, 0) == -1e6 {
		t.Fatal("clone shares detail storage with source")
	}
}
