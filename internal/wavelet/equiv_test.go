package wavelet

import (
	"math"
	"testing"

	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
)

// Equivalence suite: the fast-path kernels must produce bit-identical
// pyramids to the reference path for every bank × extension × shape,
// including non-square images and the minimum 2×2 case. This is the
// contract that lets the kernels block, unroll, and pool aggressively
// while the exptables goldens of earlier PRs stay byte-identical.

func allExtensions() []filter.Extension {
	return []filter.Extension{filter.Periodic, filter.Symmetric, filter.Zero}
}

// requireBitIdentical fails unless a and b match in shape and every
// coefficient pair is the same 64-bit pattern.
func requireBitIdentical(t *testing.T, label string, a, b *image.Image) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", label, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for r := 0; r < a.Rows; r++ {
		ra, rb := a.Row(r), b.Row(r)
		for c := range ra {
			if math.Float64bits(ra[c]) != math.Float64bits(rb[c]) {
				t.Fatalf("%s at (%d,%d): %g (%#x) vs %g (%#x)",
					label, r, c, ra[c], math.Float64bits(ra[c]), rb[c], math.Float64bits(rb[c]))
			}
		}
	}
}

func requirePyramidsBitIdentical(t *testing.T, label string, ref, got *Pyramid) {
	t.Helper()
	if len(ref.Levels) != len(got.Levels) {
		t.Fatalf("%s: depth %d vs %d", label, len(ref.Levels), len(got.Levels))
	}
	requireBitIdentical(t, label+"/approx", ref.Approx, got.Approx)
	for i := range ref.Levels {
		requireBitIdentical(t, label+"/LH", ref.Levels[i].LH, got.Levels[i].LH)
		requireBitIdentical(t, label+"/HL", ref.Levels[i].HL, got.Levels[i].HL)
		requireBitIdentical(t, label+"/HH", ref.Levels[i].HH, got.Levels[i].HH)
	}
}

// TestFastPathBitIdenticalToReference sweeps every bank, extension, and
// a set of shapes from the 2×2 minimum through non-square rectangles,
// comparing Decompose (auto-dispatched fast path) against
// DecomposeReference bit for bit.
func TestFastPathBitIdenticalToReference(t *testing.T) {
	shapes := [][2]int{{2, 2}, {2, 8}, {8, 2}, {4, 8}, {16, 64}, {64, 16}, {64, 64}, {128, 32}}
	for _, b := range banks() {
		for _, ext := range allExtensions() {
			for _, sh := range shapes {
				im := image.Landsat(sh[0], sh[1], 7)
				for levels := 1; levels <= 3; levels++ {
					if CheckDecomposable(sh[0], sh[1], levels) != nil {
						continue
					}
					ref, err := DecomposeReference(im, b, ext, levels)
					if err != nil {
						t.Fatal(err)
					}
					fast, err := Decompose(im, b, ext, levels)
					if err != nil {
						t.Fatal(err)
					}
					label := b.Name + "/" + ext.String()
					requirePyramidsBitIdentical(t, label, ref, fast)
				}
			}
		}
	}
}

// TestDecomposerBitIdenticalAndReusable checks the steady-state path:
// repeated Decomposer calls on different images must each be
// bit-identical to the reference, proving the reused buffers are fully
// overwritten (no stale state leaks between calls or shapes).
func TestDecomposerBitIdenticalAndReusable(t *testing.T) {
	for _, b := range banks() {
		d := NewDecomposer(b, filter.Periodic, 2)
		for _, seed := range []uint64{1, 2, 3} {
			im := image.Landsat(64, 32, seed)
			ref, err := DecomposeReference(im, b, filter.Periodic, 2)
			if err != nil {
				t.Fatal(err)
			}
			got, err := d.Decompose(im)
			if err != nil {
				t.Fatal(err)
			}
			requirePyramidsBitIdentical(t, b.Name, ref, got)
		}
		// Shape change mid-stream resizes and stays correct.
		im := image.Landsat(16, 16, 9)
		ref, err := DecomposeReference(im, b, filter.Periodic, 2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.Decompose(im)
		if err != nil {
			t.Fatal(err)
		}
		requirePyramidsBitIdentical(t, b.Name+"/reshaped", ref, got)
	}
}

// TestDecomposerSteadyStateAllocs is the allocation gate of the fast
// path: after warm-up, a full 3-level D8 decomposition through a
// Decomposer performs zero heap allocations.
func TestDecomposerSteadyStateAllocs(t *testing.T) {
	im := image.Landsat(128, 128, 42)
	d := NewDecomposer(filter.Daubechies8(), filter.Periodic, 3)
	if _, err := d.Decompose(im); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := d.Decompose(im); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state Decomposer allocates %.1f objects/op, want 0", allocs)
	}
}

// TestDecomposeErrorsMatchReference verifies the dispatcher rejects
// exactly what the reference rejects.
func TestDecomposeErrorsMatchReference(t *testing.T) {
	im := image.New(48, 64)
	if _, err := Decompose(im, filter.Haar(), filter.Periodic, 5); err == nil {
		t.Error("fast path accepted 48x64 at 5 levels")
	}
	if _, err := NewDecomposer(filter.Haar(), filter.Periodic, 5).Decompose(im); err == nil {
		t.Error("Decomposer accepted 48x64 at 5 levels")
	}
	if _, err := Decompose(im, filter.Haar(), filter.Periodic, 0); err == nil {
		t.Error("levels=0 accepted")
	}
}

// TestUnknownExtensionFallsBack pins the dispatch rule: an extension
// value outside the known set must still decompose (via the reference
// path) and reconstruct, not panic in a specialized kernel.
func TestUnknownExtensionFallsBack(t *testing.T) {
	im := image.Landsat(16, 16, 3)
	ext := filter.Extension(99)
	ref, err := DecomposeReference(im, filter.Haar(), ext, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompose(im, filter.Haar(), ext, 1)
	if err != nil {
		t.Fatal(err)
	}
	requirePyramidsBitIdentical(t, "unknown-ext", ref, got)
}

// TestAnalyzeRowsTypedPanic pins the PR 3 typed-error contract on the
// wavelet package: AnalyzeRows on an odd column count panics with a
// *UsageError carrying the op name, and the message text matches the
// historical string.
func TestAnalyzeRowsTypedPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic on odd column count")
		}
		ue, ok := r.(*UsageError)
		if !ok {
			t.Fatalf("panic value %T, want *UsageError", r)
		}
		if ue.Op != "AnalyzeRows" {
			t.Errorf("Op = %q, want AnalyzeRows", ue.Op)
		}
		if want := "wavelet: AnalyzeRows on odd column count 3"; ue.Error() != want {
			t.Errorf("Error() = %q, want %q", ue.Error(), want)
		}
	}()
	AnalyzeRows(image.New(2, 3), filter.Haar(), filter.Periodic)
}

// TestConvTypedPanics pins the remaining converted panic sites.
func TestConvTypedPanics(t *testing.T) {
	cases := []struct {
		op string
		fn func()
	}{
		{"AnalyzeStep", func() { AnalyzeStep(make([]float64, 3), filter.Haar().DecLo, filter.Periodic, nil) }},
		{"SynthesizeStep", func() { SynthesizeStep(make([]float64, 4), filter.Haar().DecLo, filter.Periodic, make([]float64, 7)) }},
		{"Synthesize1D", func() { Synthesize1D(make([]float64, 2), make([]float64, 3), filter.Haar(), filter.Periodic) }},
		{"AnalyzeCols", func() { AnalyzeCols(image.New(3, 2), filter.Haar(), filter.Periodic) }},
		{"SynthesizeCols", func() { SynthesizeCols(image.New(2, 2), image.New(2, 3), filter.Haar(), filter.Periodic) }},
		{"SynthesizeRows", func() { SynthesizeRows(image.New(2, 2), image.New(2, 3), filter.Haar(), filter.Periodic) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				r := recover()
				ue, ok := r.(*UsageError)
				if !ok {
					t.Errorf("%s: panic value %T, want *UsageError", tc.op, r)
					return
				}
				if ue.Op != tc.op {
					t.Errorf("Op = %q, want %q", ue.Op, tc.op)
				}
			}()
			tc.fn()
		}()
	}
}
