package wavelet

import (
	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
)

// Subbands is one level of 2-D wavelet decomposition. Following the
// paper's Figure 1, the input is row-filtered and column-decimated into L
// and H, then each is column-filtered and row-decimated:
//
//	LL — approximation (the I_{k+1} input to the next level)
//	LH — horizontal lows, vertical highs (horizontal edges)
//	HL — horizontal highs, vertical lows (vertical edges)
//	HH — diagonal detail
//
// All four subbands have half the rows and half the columns of the input.
type Subbands struct {
	LL, LH, HL, HH *image.Image
}

// AnalyzeRows row-filters im by both channels of bank and decimates the
// columns by two, producing the intermediate L and H images of the
// paper's steps (1)-(2). Each output is Rows × Cols/2.
func AnalyzeRows(im *image.Image, bank *filter.Bank, ext filter.Extension) (l, h *image.Image) {
	if im.Cols%2 != 0 {
		panic(usage("AnalyzeRows", "AnalyzeRows on odd column count %d", im.Cols))
	}
	l = image.New(im.Rows, im.Cols/2)
	h = image.New(im.Rows, im.Cols/2)
	for r := 0; r < im.Rows; r++ {
		src := im.Row(r)
		AnalyzeStep(src, bank.DecLo, ext, l.Row(r))
		AnalyzeStep(src, bank.DecHi, ext, h.Row(r))
	}
	return l, h
}

// AnalyzeCols column-filters im by both channels of bank and decimates the
// rows by two (the paper's steps (3)-(4) applied to one intermediate
// image). Each output is Rows/2 × Cols.
func AnalyzeCols(im *image.Image, bank *filter.Bank, ext filter.Extension) (lo, hi *image.Image) {
	if im.Rows%2 != 0 {
		panic(usage("AnalyzeCols", "AnalyzeCols on odd row count %d", im.Rows))
	}
	lo = image.New(im.Rows/2, im.Cols)
	hi = image.New(im.Rows/2, im.Cols)
	col := make([]float64, im.Rows)
	outLo := make([]float64, im.Rows/2)
	outHi := make([]float64, im.Rows/2)
	for c := 0; c < im.Cols; c++ {
		col = im.Col(c, col)
		AnalyzeStep(col, bank.DecLo, ext, outLo)
		AnalyzeStep(col, bank.DecHi, ext, outHi)
		lo.SetCol(c, outLo)
		hi.SetCol(c, outHi)
	}
	return lo, hi
}

// Analyze2D performs one full level of separable 2-D decomposition.
func Analyze2D(im *image.Image, bank *filter.Bank, ext filter.Extension) *Subbands {
	l, h := AnalyzeRows(im, bank, ext)
	ll, lh := AnalyzeCols(l, bank, ext)
	hl, hh := AnalyzeCols(h, bank, ext)
	return &Subbands{LL: ll, LH: lh, HL: hl, HH: hh}
}

// SynthesizeCols inverts AnalyzeCols: it merges the column-filtered lo/hi
// pair back into a Rows·2 × Cols image.
func SynthesizeCols(lo, hi *image.Image, bank *filter.Bank, ext filter.Extension) *image.Image {
	if lo.Rows != hi.Rows || lo.Cols != hi.Cols {
		panic(usage("SynthesizeCols", "SynthesizeCols subband shape mismatch"))
	}
	out := image.New(lo.Rows*2, lo.Cols)
	colLo := make([]float64, lo.Rows)
	colHi := make([]float64, lo.Rows)
	full := make([]float64, lo.Rows*2)
	for c := 0; c < lo.Cols; c++ {
		colLo = lo.Col(c, colLo)
		colHi = hi.Col(c, colHi)
		for i := range full {
			full[i] = 0
		}
		SynthesizeStep(colLo, bank.RecLo, ext, full)
		SynthesizeStep(colHi, bank.RecHi, ext, full)
		out.SetCol(c, full)
	}
	return out
}

// SynthesizeRows inverts AnalyzeRows: it merges the row-filtered l/h pair
// back into a Rows × Cols·2 image.
func SynthesizeRows(l, h *image.Image, bank *filter.Bank, ext filter.Extension) *image.Image {
	if l.Rows != h.Rows || l.Cols != h.Cols {
		panic(usage("SynthesizeRows", "SynthesizeRows subband shape mismatch"))
	}
	out := image.New(l.Rows, l.Cols*2)
	for r := 0; r < l.Rows; r++ {
		dst := out.Row(r)
		SynthesizeStep(l.Row(r), bank.RecLo, ext, dst)
		SynthesizeStep(h.Row(r), bank.RecHi, ext, dst)
	}
	return out
}

// Synthesize2D inverts Analyze2D, reconstructing the parent image of a
// subband quartet (the paper's Figure 2 reverse process).
func Synthesize2D(sb *Subbands, bank *filter.Bank, ext filter.Extension) *image.Image {
	l := SynthesizeCols(sb.LL, sb.LH, bank, ext)
	h := SynthesizeCols(sb.HL, sb.HH, bank, ext)
	return SynthesizeRows(l, h, bank, ext)
}

// Level2DMACs returns the multiply-accumulate count of one Analyze2D level
// on a rows×cols image with a length-f filter: two channels of row
// filtering plus two channels of column filtering on each of the two
// intermediate images.
func Level2DMACs(rows, cols, f int) int {
	// L and H over every row.
	rowPass := 2 * rows * AnalyzeMACs(cols, f)
	// Each intermediate image is rows×(cols/2); both are column-filtered
	// by both channels: 2 images × 2 channels × cols/2 columns.
	colPass := 2 * 2 * (cols / 2) * AnalyzeMACs(rows, f)
	return rowPass + colPass
}
