package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
	"wavelethpc/internal/wavelet"
)

// newTestServer builds a server with the given knobs and returns it with
// a gate: while the gate is open (not yet closed), executors block in
// the hook before touching any job, letting tests fill the queue
// deterministically.
func newTestServer(t *testing.T, cfg Config) (*Server, chan struct{}, chan struct{}) {
	t.Helper()
	gate := make(chan struct{})
	entered := make(chan struct{}, 1024)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.execHook = func() {
		entered <- struct{}{}
		<-gate
	}
	t.Cleanup(func() {
		select {
		case <-gate:
		default:
			close(gate)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, gate, entered
}

// waitCounter polls an atomic counter until it reaches want.
func waitCounter(t *testing.T, c *Counter, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Value() < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter stuck at %d, want %d", c.Value(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func requirePyramidMatchesReference(t *testing.T, label string, im *image.Image, bank *filter.Bank, levels int, got *wavelet.Pyramid) {
	t.Helper()
	ref, err := wavelet.DecomposeReference(im, bank, filter.Periodic, levels)
	if err != nil {
		t.Fatal(err)
	}
	if !image.EqualBits(ref.Approx, got.Approx) {
		t.Fatalf("%s: approximation diverged from reference", label)
	}
	for i := range ref.Levels {
		if !image.EqualBits(ref.Levels[i].LH, got.Levels[i].LH) ||
			!image.EqualBits(ref.Levels[i].HL, got.Levels[i].HL) ||
			!image.EqualBits(ref.Levels[i].HH, got.Levels[i].HH) {
			t.Fatalf("%s: detail level %d diverged from reference", label, i)
		}
	}
}

// TestOverloadRejectsDeterministically is the bounded-queue contract:
// with one blocked worker and a depth-2 queue, exactly worker+depth
// requests are admitted and every further Do returns *OverloadError
// immediately — the queue never grows and admission never blocks.
func TestOverloadRejectsDeterministically(t *testing.T) {
	s, gate, entered := newTestServer(t, Config{Workers: 1, QueueDepth: 2, Levels: 2})
	im := image.Landsat(32, 32, 1)

	type outcome struct {
		res *Result
		err error
	}
	results := make(chan outcome, 3)
	for i := 0; i < 3; i++ {
		go func() {
			res, err := s.Do(context.Background(), Request{Image: im})
			results <- outcome{res, err}
		}()
	}
	<-entered // worker holds request 1
	waitCounter(t, &s.metrics.Accepted, 3)

	// Queue now full (2 queued + 1 in flight): rejection is deterministic.
	for i := 0; i < 5; i++ {
		start := time.Now()
		_, err := s.Do(context.Background(), Request{Image: im})
		var oe *OverloadError
		if !errors.As(err, &oe) {
			t.Fatalf("attempt %d: err = %v, want *OverloadError", i, err)
		}
		if oe.Capacity != 2 {
			t.Errorf("Capacity = %d, want 2", oe.Capacity)
		}
		if d := time.Since(start); d > time.Second {
			t.Errorf("rejection took %v, want immediate", d)
		}
	}
	if got := s.metrics.Rejected.Value(); got != 5 {
		t.Errorf("Rejected = %d, want 5", got)
	}

	close(gate)
	for i := 0; i < 3; i++ {
		o := <-results
		if o.err != nil {
			t.Fatalf("admitted request failed: %v", o.err)
		}
		requirePyramidMatchesReference(t, "admitted", im, s.cfg.Bank, 2, o.res.Pyramid)
		o.res.Close()
	}
}

// TestOverloadNeverBlocksPastDeadline: a caller with a deadline learns
// about overload via *OverloadError, not by burning its deadline in
// line — admission is non-blocking by construction.
func TestOverloadNeverBlocksPastDeadline(t *testing.T) {
	s, _, entered := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Levels: 1})
	im := image.Landsat(16, 16, 2)

	go s.Do(context.Background(), Request{Image: im}) // worker occupied
	<-entered
	go s.Do(context.Background(), Request{Image: im}) // fills the queue
	waitCounter(t, &s.metrics.Accepted, 2)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	_, err := s.Do(ctx, Request{Image: im})
	elapsed := time.Since(start)
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want *OverloadError", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("overloaded Do took %v, want immediate rejection", elapsed)
	}
}

// TestQueuedRequestExpires: a request whose context ends while queued is
// returned to its caller with the context error and skipped (counted as
// Expired) by the executor, not decomposed.
func TestQueuedRequestExpires(t *testing.T) {
	s, gate, entered := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Levels: 1})
	im := image.Landsat(16, 16, 3)

	go s.Do(context.Background(), Request{Image: im})
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Do(ctx, Request{Image: im})
		errc <- err
	}()
	waitCounter(t, &s.metrics.Accepted, 2)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	close(gate)
	waitCounter(t, &s.metrics.Expired, 1)
	if got := s.metrics.Completed.Value(); got != 1 {
		t.Errorf("Completed = %d, want 1 (expired request must not execute)", got)
	}
}

// TestGracefulDrain: Shutdown completes queued and in-flight work, then
// stops; later Dos get ErrStopped; executors exit (Shutdown returns nil).
func TestGracefulDrain(t *testing.T) {
	s, gate, entered := newTestServer(t, Config{Workers: 2, QueueDepth: 8, Levels: 2})
	im := image.Landsat(32, 32, 4)

	const n = 6
	results := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			res, err := s.Do(context.Background(), Request{Image: im})
			if err == nil {
				res.Close()
			}
			results <- err
		}()
	}
	<-entered
	<-entered // both workers hold a request
	waitCounter(t, &s.metrics.Accepted, n)

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// Give Shutdown a moment to flip the stopped flag, then release.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.RLock()
		stopped := s.stopped
		s.mu.RUnlock()
		if stopped {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Shutdown never stopped admission")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Do(context.Background(), Request{Image: im}); !errors.Is(err, ErrStopped) {
		t.Fatalf("Do after Shutdown: err = %v, want ErrStopped", err)
	}
	close(gate)
	for i := 0; i < n; i++ {
		if err := <-results; err != nil {
			t.Fatalf("drained request %d failed: %v", i, err)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := s.metrics.Completed.Value(); got != n {
		t.Errorf("Completed = %d, want %d", got, n)
	}
	// Idempotent.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

// TestPooledDecomposersNotSharedConcurrently is the -race stress gate:
// many goroutines across several traffic classes hammer the server, and
// every result must be bit-identical to the reference. A Decomposer
// leaking between two in-flight requests shows up either as a race
// report or as a diverged pyramid (its output buffers get overwritten).
func TestPooledDecomposersNotSharedConcurrently(t *testing.T) {
	s, err := New(Config{Workers: 4, QueueDepth: 256, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	classes := []struct {
		im     *image.Image
		bank   *filter.Bank
		levels int
	}{
		{image.Landsat(32, 32, 1), filter.Haar(), 2},
		{image.Landsat(32, 32, 2), filter.Daubechies8(), 2},
		{image.Landsat(64, 16, 3), filter.Daubechies4(), 1},
	}
	const goroutines = 8
	const iters = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c := classes[(g+i)%len(classes)]
				res, err := s.Do(context.Background(), Request{Image: c.im, Bank: c.bank, Levels: c.levels})
				if err != nil {
					var oe *OverloadError
					if errors.As(err, &oe) {
						continue // legitimate under stress
					}
					errs <- err
					return
				}
				ref, err := wavelet.DecomposeReference(c.im, c.bank, filter.Periodic, c.levels)
				if err != nil {
					errs <- err
					return
				}
				if !image.EqualBits(ref.Approx, res.Pyramid.Approx) {
					errs <- fmt.Errorf("goroutine %d iter %d: pyramid diverged (decomposer shared?)", g, i)
					return
				}
				res.Close()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestMicroBatch: with BatchSize=4 and one worker, eight queued
// compatible requests execute as two batches of four through the core
// batch pool, every result still bit-identical to the reference.
func TestMicroBatch(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 16, Levels: 2, BatchSize: 4, BatchWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	gate := make(chan struct{})
	entered := make(chan struct{}, 16)
	blockedOnce := false
	s.execHook = func() {
		if !blockedOnce { // single worker: no concurrent hook calls
			blockedOnce = true
			entered <- struct{}{}
			<-gate
		}
	}

	im := image.Landsat(32, 32, 9)
	const n = 8
	results := make(chan error, n)
	submit := func() {
		res, err := s.Do(context.Background(), Request{Image: im})
		if err == nil {
			requirePyramidMatchesReference(t, "batched", im, s.cfg.Bank, 2, res.Pyramid)
			res.Close()
		}
		results <- err
	}
	go submit()
	<-entered // first request popped and held
	for i := 1; i < n; i++ {
		go submit()
	}
	waitCounter(t, &s.metrics.Accepted, n)
	close(gate)
	for i := 0; i < n; i++ {
		if err := <-results; err != nil {
			t.Fatalf("batched request failed: %v", err)
		}
	}
	snap := s.metrics.Snapshot()
	if snap.BatchedImages != n {
		t.Errorf("BatchedImages = %d, want %d (two batches of four)", snap.BatchedImages, n)
	}
	if snap.Completed != n {
		t.Errorf("Completed = %d, want %d", snap.Completed, n)
	}
}

// TestMetricsSnapshotCountsMatchRequests: the registry's counters must
// agree exactly with the requests issued.
func TestMetricsSnapshotCountsMatchRequests(t *testing.T) {
	s, err := New(Config{Workers: 2, QueueDepth: 8, Levels: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	im := image.Landsat(16, 16, 5)
	const n = 7
	for i := 0; i < n; i++ {
		res, err := s.Do(context.Background(), Request{Image: im})
		if err != nil {
			t.Fatal(err)
		}
		res.Close()
	}
	snap := s.metrics.Snapshot()
	if snap.Accepted != n || snap.Completed != n {
		t.Errorf("Accepted/Completed = %d/%d, want %d/%d", snap.Accepted, snap.Completed, n, n)
	}
	if snap.Rejected != 0 || snap.Errors != 0 || snap.Expired != 0 {
		t.Errorf("Rejected/Errors/Expired = %d/%d/%d, want 0/0/0", snap.Rejected, snap.Errors, snap.Expired)
	}
	if snap.Latency.Count != n {
		t.Errorf("latency observations = %d, want %d", snap.Latency.Count, n)
	}
	if snap.QueueDepth.Count != n {
		t.Errorf("queue-depth observations = %d, want %d", snap.QueueDepth.Count, n)
	}
}

// TestConfigAndRequestValidation: misuse surfaces as errors wrapping
// *wavelet.UsageError — never a panic across the serve boundary.
func TestConfigAndRequestValidation(t *testing.T) {
	for _, cfg := range []Config{
		{QueueDepth: -1},
		{Workers: -2},
		{Levels: -3},
		{BatchSize: -1},
		{Extension: filter.Extension(99)},
	} {
		_, err := New(cfg)
		var ue *wavelet.UsageError
		if !errors.As(err, &ue) {
			t.Errorf("New(%+v): err = %v, want wrapped *wavelet.UsageError", cfg, err)
		}
	}

	s, err := New(Config{Workers: 1, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	cases := []Request{
		{}, // nil image
		{Image: image.Landsat(16, 16, 1), Levels: -1},
		{Image: image.Landsat(10, 10, 1)},            // not decomposable to 2 levels
		{Image: image.Landsat(16, 16, 1), Levels: 9}, // too deep
	}
	for i, req := range cases {
		_, err := s.Do(context.Background(), req)
		var ue *wavelet.UsageError
		if !errors.As(err, &ue) {
			t.Errorf("case %d: err = %v, want wrapped *wavelet.UsageError", i, err)
		}
	}
}

// TestResultDetach: Detach hands back a pyramid that survives the
// decomposer's return to the pool and subsequent reuse.
func TestResultDetach(t *testing.T) {
	s, err := New(Config{Workers: 1, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	a := image.Landsat(32, 32, 11)
	b := image.Landsat(32, 32, 22)

	res, err := s.Do(context.Background(), Request{Image: a})
	if err != nil {
		t.Fatal(err)
	}
	kept := res.Detach() // closes res; pool may hand the decomposer out again
	res2, err := s.Do(context.Background(), Request{Image: b})
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Close()
	requirePyramidMatchesReference(t, "detached", a, s.cfg.Bank, 2, kept)
	requirePyramidMatchesReference(t, "reused", b, s.cfg.Bank, 2, res2.Pyramid)
}
