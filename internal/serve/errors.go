package serve

import (
	"errors"
	"fmt"
)

// OverloadError is the typed rejection returned when the admission queue
// is full. Rejection is deterministic and immediate: admission never
// blocks, so a caller holding a deadline learns about overload in
// microseconds instead of burning its budget waiting in line. Callers
// are expected to back off (the HTTP layer translates this into
// 503 + Retry-After).
type OverloadError struct {
	// Capacity is the configured admission-queue bound that was hit.
	Capacity int
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: admission queue full (capacity %d)", e.Capacity)
}

// ErrStopped is returned by Do once Shutdown has begun: the server no
// longer admits work, though in-flight and already-queued requests still
// complete (graceful drain).
var ErrStopped = errors.New("serve: server stopped")
