package serve

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// Zero-dependency metrics: counters and fixed-bucket histograms with
// lock-free hot paths (one atomic add per counter event, two atomic adds
// plus one CAS loop per histogram observation). Snapshot() gives
// embedders a consistent-enough copy; WriteProm renders the Prometheus
// text exposition format for the /metrics handler.

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
//
//wavelint:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram is a fixed-boundary cumulative-bucket histogram. Bounds are
// upper bucket edges in ascending order; an implicit +Inf bucket catches
// the tail. Observation is lock-free.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, last is +Inf
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram with the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	cp := make([]float64, len(bounds))
	copy(cp, bounds)
	return &Histogram{bounds: cp, buckets: make([]atomic.Int64, len(cp)+1)}
}

// Observe records one sample.
//
//wavelint:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram. Counts holds
// one entry per bound plus the +Inf tail. Because buckets are read one
// atomic at a time while observations continue, a snapshot taken under
// load may be off by the handful of events that landed mid-copy; taken
// at rest it is exact.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot { return h.snapshot() }

// snapshot copies the histogram state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile returns an upper estimate of the q-quantile (0 < q <= 1): the
// upper bound of the bucket the rank falls in. Samples beyond the last
// bound return +Inf; an empty histogram returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// Metrics is the service's registry. All fields are updated on the
// request hot path with atomics only.
type Metrics struct {
	// Accepted counts requests admitted to the queue.
	Accepted Counter
	// Rejected counts requests refused with *OverloadError.
	Rejected Counter
	// Completed counts requests that finished with a pyramid.
	Completed Counter
	// Errors counts requests that failed during execution.
	Errors Counter
	// Expired counts requests whose context ended before execution.
	Expired Counter
	// BatchedImages counts images processed through micro-batches of
	// size >= 2.
	BatchedImages Counter
	// Latency observes seconds from admission to completion.
	Latency *Histogram
	// QueueDepth observes the queue depth seen at each admission.
	QueueDepth *Histogram
	// BatchSize observes the size of each executed batch (1 = unbatched).
	BatchSize *Histogram
}

func newMetrics() *Metrics {
	return &Metrics{
		Latency: NewHistogram([]float64{
			0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
			0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
		}),
		QueueDepth: NewHistogram([]float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}),
		BatchSize:  NewHistogram([]float64{1, 2, 4, 8, 16, 32}),
	}
}

// Snapshot is a point-in-time copy of every metric.
type Snapshot struct {
	Accepted      int64             `json:"accepted"`
	Rejected      int64             `json:"rejected"`
	Completed     int64             `json:"completed"`
	Errors        int64             `json:"errors"`
	Expired       int64             `json:"expired"`
	BatchedImages int64             `json:"batched_images"`
	Latency       HistogramSnapshot `json:"latency_seconds"`
	QueueDepth    HistogramSnapshot `json:"queue_depth"`
	BatchSize     HistogramSnapshot `json:"batch_size"`
}

// Snapshot copies the registry.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Accepted:      m.Accepted.Value(),
		Rejected:      m.Rejected.Value(),
		Completed:     m.Completed.Value(),
		Errors:        m.Errors.Value(),
		Expired:       m.Expired.Value(),
		BatchedImages: m.BatchedImages.Value(),
		Latency:       m.Latency.snapshot(),
		QueueDepth:    m.QueueDepth.snapshot(),
		BatchSize:     m.BatchSize.snapshot(),
	}
}

// WriteProm renders the snapshot in the Prometheus text exposition
// format under the waveserve_ namespace.
func (s Snapshot) WriteProm(w io.Writer) error {
	counters := []struct {
		name, help string
		v          int64
	}{
		{"waveserve_accepted_total", "requests admitted to the queue", s.Accepted},
		{"waveserve_rejected_total", "requests rejected with OverloadError", s.Rejected},
		{"waveserve_completed_total", "requests completed successfully", s.Completed},
		{"waveserve_errors_total", "requests failed during execution", s.Errors},
		{"waveserve_expired_total", "requests expired before execution", s.Expired},
		{"waveserve_batched_images_total", "images processed in micro-batches", s.BatchedImages},
	}
	for _, c := range counters {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			c.name, c.help, c.name, c.name, c.v); err != nil {
			return err
		}
	}
	hists := []struct {
		name, help string
		h          HistogramSnapshot
	}{
		{"waveserve_latency_seconds", "admission-to-completion latency", s.Latency},
		{"waveserve_queue_depth", "queue depth observed at admission", s.QueueDepth},
		{"waveserve_batch_size", "executed micro-batch sizes", s.BatchSize},
	}
	for _, h := range hists {
		if err := WritePromHistogram(w, h.name, h.help, h.h); err != nil {
			return err
		}
	}
	return nil
}

// WritePromHistogram renders one histogram snapshot in the Prometheus
// text exposition format; shared with the gateway's metrics page so both
// services speak one dialect.
func WritePromHistogram(w io.Writer, name, help string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	var cum int64
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum); err != nil {
			return err
		}
	}
	cum += h.Counts[len(h.Counts)-1]
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
		name, cum, name, h.Sum, name, h.Count)
	return err
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }
