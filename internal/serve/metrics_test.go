package serve

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("Value = %d, want 8000", got)
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.snapshot()
	// Buckets are upper-inclusive: 0.5 and 1 land in le=1; 1.5 in le=2;
	// 3 in le=4; 100 in +Inf.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("Counts[%d] = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 5 {
		t.Errorf("Count = %d, want 5", s.Count)
	}
	if s.Sum != 106 {
		t.Errorf("Sum = %g, want 106", s.Sum)
	}
}

func TestHistogramObserveConcurrent(t *testing.T) {
	h := NewHistogram([]float64{10})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	s := h.snapshot()
	if s.Count != 4000 || s.Counts[0] != 4000 {
		t.Errorf("Count/Counts[0] = %d/%d, want 4000/4000", s.Count, s.Counts[0])
	}
	if s.Sum != 4000 {
		t.Errorf("Sum = %g, want 4000 (CAS accumulation lost updates)", s.Sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 90; i++ {
		h.Observe(0.5) // le=1
	}
	for i := 0; i < 9; i++ {
		h.Observe(3) // le=4
	}
	h.Observe(100) // +Inf
	s := h.snapshot()
	if q := s.Quantile(0.5); q != 1 {
		t.Errorf("p50 = %g, want 1", q)
	}
	if q := s.Quantile(0.95); q != 4 {
		t.Errorf("p95 = %g, want 4", q)
	}
	if q := s.Quantile(1); !math.IsInf(q, 1) {
		t.Errorf("p100 = %g, want +Inf", q)
	}
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %g, want 0", q)
	}
}

func TestWritePromFormat(t *testing.T) {
	m := newMetrics()
	m.Accepted.Add(3)
	m.Latency.Observe(0.002)
	m.Latency.Observe(0.3)
	var b strings.Builder
	if err := m.Snapshot().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE waveserve_accepted_total counter",
		"waveserve_accepted_total 3",
		"# TYPE waveserve_latency_seconds histogram",
		`waveserve_latency_seconds_bucket{le="0.0025"} 1`,
		`waveserve_latency_seconds_bucket{le="+Inf"} 2`,
		"waveserve_latency_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteProm output missing %q\n%s", want, out)
		}
	}
}
