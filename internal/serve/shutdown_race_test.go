package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wavelethpc/internal/image"
)

// TestShutdownRaceEveryRequestOneOutcome hammers Do, the HTTP handler,
// and Shutdown concurrently (run under -race): every request must settle
// with exactly one typed outcome — a Result, *OverloadError, ErrStopped,
// or the caller's context error — and the Decomposer pools must not leak
// under the churn.
func TestShutdownRaceEveryRequestOneOutcome(t *testing.T) {
	const workers = 2
	s, err := New(Config{QueueDepth: 8, Workers: workers, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	handler := s.Handler()
	im := image.Landsat(32, 32, 5)
	var pgm bytes.Buffer
	if err := image.WritePGM(&pgm, im); err != nil {
		t.Fatal(err)
	}

	var (
		results  atomic.Int64
		overload atomic.Int64
		stopped  atomic.Int64
		ctxErrs  atomic.Int64
		badHTTP  atomic.Int64
	)
	// Shutdown fires only after enough traffic has settled, and every Do
	// client keeps issuing requests until it personally observes
	// ErrStopped — so the race window cannot be missed on either side,
	// no matter how the scheduler interleaves the goroutines.
	var settled, httpReqs atomic.Int64
	shutdownNow := make(chan struct{})
	var trigger sync.Once
	shutdownDone := make(chan struct{})
	var wg sync.WaitGroup
	// Direct Do callers.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				res, err := s.Do(ctx, Request{Image: im, Levels: 2})
				cancel()
				switch {
				case err == nil && res != nil:
					results.Add(1)
					res.Close()
				case err == nil || res != nil:
					t.Error("Do returned neither-or-both of (Result, error)")
				case func() bool { var oe *OverloadError; return errors.As(err, &oe) }():
					overload.Add(1)
				case errors.Is(err, ErrStopped):
					stopped.Add(1)
				case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
					ctxErrs.Add(1)
				default:
					t.Errorf("Do settled with an untyped outcome: %v", err)
				}
				if settled.Add(1) >= 40 {
					trigger.Do(func() { close(shutdownNow) })
				}
				if err != nil && errors.Is(err, ErrStopped) {
					return // the server is down for good; outcome recorded
				}
			}
			t.Error("Do client never observed ErrStopped")
		}()
	}
	// HTTP callers racing the same shutdown.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			post := func(i int) int {
				httpReqs.Add(1)
				req := httptest.NewRequest(http.MethodPost,
					"/v1/decompose?filter=db8&levels=2", bytes.NewReader(pgm.Bytes()))
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, req)
				switch rec.Code {
				case http.StatusOK, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
				default:
					badHTTP.Add(1)
					t.Errorf("HTTP request %d: status %d", i, rec.Code)
				}
				return rec.Code
			}
			for i := 0; i < 5000; i++ {
				select {
				case <-shutdownDone:
					// The drained server must refuse over HTTP too.
					if code := post(i); code != http.StatusServiceUnavailable {
						t.Errorf("post-shutdown HTTP status %d, want 503", code)
					}
					return
				default:
					post(i)
				}
			}
		}()
	}
	// The shutdown racer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-shutdownNow
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		close(shutdownDone)
	}()
	wg.Wait()

	if results.Load() == 0 {
		t.Error("no request completed before shutdown; the race window missed")
	}
	if stopped.Load() == 0 {
		t.Error("no request observed ErrStopped; shutdown raced nothing")
	}
	// Leak witness: one traffic class (shape, bank, levels), so the pool
	// needs about one Decomposer per concurrent caller — a leak creates
	// one per request. The threshold is proportional rather than constant
	// because sync.Pool deliberately drops ~1/4 of Puts under the race
	// detector (and GC may discard entries), so some re-creation is
	// expected; a leak still lands at ~1× the request count, well above
	// the halfway line.
	total := settled.Load() + httpReqs.Load()
	if got := int64(s.CreatedDecomposers()); got > workers+8+total/2 {
		t.Errorf("pools created %d Decomposers across %d requests with %d workers — leak",
			got, total, workers)
	}
	t.Logf("outcomes: %d results, %d overload, %d stopped, %d ctx, %d bad-http",
		results.Load(), overload.Load(), stopped.Load(), ctxErrs.Load(), badHTTP.Load())
}

// TestReadyzReportsSaturationAndDrain pins the /readyz contract: 200 with
// queue headroom, 503 + JSON body once the queue is saturated, 503 after
// Shutdown — while /healthz stays a pure liveness check until drain.
func TestReadyzReportsSaturationAndDrain(t *testing.T) {
	s, err := New(Config{QueueDepth: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	hookReached := make(chan struct{}, 8)
	s.execHook = func() {
		hookReached <- struct{}{}
		<-gate
	}
	handler := s.Handler()
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}

	if rec := get("/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("idle /readyz = %d, want 200", rec.Code)
	}
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("idle /healthz = %d, want 200", rec.Code)
	}

	// Saturate: one request executing (held at the hook), one queued.
	im := image.Landsat(32, 32, 5)
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			res, err := s.Do(context.Background(), Request{Image: im, Levels: 2})
			if err == nil {
				res.Close()
			}
			done <- struct{}{}
		}()
	}
	<-hookReached // first request is executing; the second occupies the queue
	for len(s.queue) == 0 {
		time.Sleep(time.Millisecond)
	}
	rec := get("/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated /readyz = %d, want 503", rec.Code)
	}
	if body := rec.Body.String(); !bytes.Contains([]byte(body), []byte(`"capacity":1`)) {
		t.Errorf("saturated /readyz body %q missing queue capacity", body)
	}
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Errorf("saturated /healthz = %d, want 200 (saturation is not un-liveness)", rec.Code)
	}

	close(gate)
	<-done
	<-done
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rec := get("/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("drained /readyz = %d, want 503", rec.Code)
	}
	if rec := get("/healthz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("drained /healthz = %d, want 503", rec.Code)
	}
}
