// Package serve is the embeddable decomposition service layer: the
// point where the fast steady-state kernels of internal/wavelet meet
// production traffic. It owns a bounded admission queue with
// deterministic overload rejection (*OverloadError, never a blocking
// wait), per-(rows, cols, bank, levels) pools of reused
// wavelet.Decomposers, optional micro-batching of compatible requests
// onto the internal/core worker pool, per-request deadlines via
// context.Context, graceful drain on shutdown, and a zero-dependency
// atomic metrics registry exposed through Snapshot and the net/http
// handler set (/v1/decompose, /healthz, /metrics).
//
// The paper's closing claim — a sustained rate of "30 images or more
// per second", enough for real-time EOSDIS-scale processing — is
// exactly the workload this layer schedules; cmd/waveserved wraps it in
// a standalone daemon and cmd/benchjson -serve measures it.
package serve

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wavelethpc/internal/core"
	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
	"wavelethpc/internal/wavelet"
)

// Config parameterizes a Server. The zero value of every field selects
// a sensible default; invalid (negative) values are rejected by New
// with a wrapped *wavelet.UsageError.
type Config struct {
	// Bank is the default filter bank for requests that do not name
	// one. Nil selects Daubechies-8 (the paper's F8).
	Bank *filter.Bank
	// Levels is the default decomposition depth (0 = 3).
	Levels int
	// Extension is the border policy for every request (the service is
	// homogeneous in extension; default Periodic).
	Extension filter.Extension
	// QueueDepth bounds the admission queue (0 = 64). When the queue
	// is full, Do rejects immediately with *OverloadError.
	QueueDepth int
	// Workers is the number of executor goroutines (0 = GOMAXPROCS).
	Workers int
	// BatchSize enables micro-batching when >= 2: an executor that
	// pops a request drains up to BatchSize-1 more already-queued
	// compatible requests (same shape, bank, and depth) and runs them
	// through the internal/core batch pool in one go. 0 or 1 disables.
	BatchSize int
	// BatchWorkers is the worker count inside one micro-batch
	// (0 = GOMAXPROCS); only meaningful with BatchSize >= 2.
	BatchWorkers int
	// Clock injects a time source for tests; nil uses the wall clock.
	Clock func() time.Time
}

// Request is one decomposition job.
type Request struct {
	// Image is the raster to decompose. It must stay unmodified until
	// the request completes.
	Image *image.Image
	// Bank overrides the server's default bank when non-nil. Banks are
	// identified by Name for Decomposer pooling, so two banks sharing
	// a name must share coefficients (true for every filter.ByName
	// result).
	Bank *filter.Bank
	// Levels overrides the server's default depth when > 0.
	Levels int
	// Tolerance opts this request into the lifting fast tier: the
	// decomposition may drift from the bit-identical default by at most
	// this relative error. 0 (the zero value) keeps the convolution
	// tier; negative or non-finite values are rejected with a typed
	// *wavelet.UsageError. The tier engages only when the bank and the
	// server's extension admit it — otherwise the request silently runs
	// on the convolution tier, which always satisfies any tolerance.
	Tolerance float64
}

// Result is a completed decomposition. Close returns the pooled
// Decomposer backing Pyramid to the server, after which Pyramid must
// not be read; call Detach first to keep a private copy.
type Result struct {
	// Pyramid is the decomposition. For pooled (unbatched) results it
	// references the Decomposer's reused buffers and is invalidated by
	// Close.
	Pyramid *wavelet.Pyramid

	release  func()
	released atomic.Bool
}

// Close releases the pooled resources behind the result. Idempotent.
func (r *Result) Close() {
	if r.release != nil && r.released.CompareAndSwap(false, true) {
		r.release()
	}
}

// Detach deep-copies the pyramid, closes the result, and returns the
// copy, which the caller owns outright.
func (r *Result) Detach() *wavelet.Pyramid {
	p := r.Pyramid.Clone()
	r.Close()
	return p
}

// poolKey identifies a Decomposer pool: one pool per request shape ×
// bank × depth × tolerance, so arenas and output pyramids are always
// right-sized for the traffic class they serve and lifting-tier
// Decomposers never leak into bit-identical traffic.
type poolKey struct {
	rows, cols int
	bank       string
	levels     int
	tol        float64
}

// job is a queued request plus its delivery plumbing.
type job struct {
	im     *image.Image
	bank   *filter.Bank
	levels int
	key    poolKey
	ctx    context.Context
	start  time.Time
	done   chan jobResponse
	// handedOff arbitrates delivery between the executor and a Do that
	// gave up on its context: whoever wins the CAS owns the response.
	handedOff atomic.Bool
}

type jobResponse struct {
	res *Result
	err error
}

// Server is the decomposition service. Create with New; it is safe for
// concurrent use.
type Server struct {
	cfg     Config
	now     func() time.Time
	queue   chan *job
	mu      sync.RWMutex // guards stopped vs. queue close
	stopped bool
	wg      sync.WaitGroup
	metrics *Metrics

	poolMu sync.Mutex
	pools  map[poolKey]*sync.Pool
	// created counts Decomposers ever constructed across the pools: a
	// leak witness for tests (a drained server that keeps creating
	// fresh Decomposers under bounded concurrency is losing them).
	created atomic.Int64

	// execHook, when set (tests only), runs at the start of each
	// executor iteration, before batching and execution.
	execHook func()
}

// New validates cfg and starts the executor goroutines.
func New(cfg Config) (*Server, error) {
	if cfg.QueueDepth < 0 {
		return nil, badConfig("QueueDepth = %d, want >= 0", cfg.QueueDepth)
	}
	if cfg.Workers < 0 {
		return nil, badConfig("Workers = %d, want >= 0", cfg.Workers)
	}
	if cfg.Levels < 0 {
		return nil, badConfig("Levels = %d, want >= 0", cfg.Levels)
	}
	if cfg.BatchSize < 0 {
		return nil, badConfig("BatchSize = %d, want >= 0", cfg.BatchSize)
	}
	switch cfg.Extension {
	case filter.Periodic, filter.Symmetric, filter.Zero:
	default:
		return nil, badConfig("unknown Extension %v", cfg.Extension)
	}
	if cfg.Bank == nil {
		cfg.Bank = filter.Daubechies8()
	}
	if cfg.Levels == 0 {
		cfg.Levels = 3
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 1
	}
	s := &Server{
		cfg:     cfg,
		now:     cfg.Clock,
		queue:   make(chan *job, cfg.QueueDepth),
		metrics: newMetrics(),
		pools:   map[poolKey]*sync.Pool{},
	}
	if s.now == nil {
		s.now = time.Now
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s, nil
}

func badConfig(format string, args ...any) error {
	return fmt.Errorf("serve: invalid config: %w",
		&wavelet.UsageError{Op: "serve.New", Detail: fmt.Sprintf(format, args...)})
}

func badRequest(format string, args ...any) error {
	return fmt.Errorf("serve: invalid request: %w",
		&wavelet.UsageError{Op: "serve.Do", Detail: fmt.Sprintf(format, args...)})
}

// Metrics returns the server's registry (live; use Snapshot for a
// consistent copy).
func (s *Server) Metrics() *Metrics { return s.metrics }

// QueueLen returns the current admission-queue depth.
func (s *Server) QueueLen() int { return len(s.queue) }

// CreatedDecomposers returns how many Decomposers the pools have ever
// constructed — a leak witness: under bounded concurrency the count must
// stay bounded by the worker count per traffic class.
func (s *Server) CreatedDecomposers() int64 { return s.created.Load() }

// Do submits one request and waits for its result or the context. The
// admission decision is immediate: a full queue returns *OverloadError
// without blocking, so Do never waits in line past a deadline it cannot
// meet. A request whose context ends while queued is reported with the
// context's error; its slot is reclaimed without executing. The caller
// must Close (or Detach) the returned Result.
func (s *Server) Do(ctx context.Context, req Request) (*Result, error) {
	if req.Image == nil {
		return nil, badRequest("nil image")
	}
	bank := req.Bank
	if bank == nil {
		bank = s.cfg.Bank
	}
	levels := req.Levels
	if levels == 0 {
		levels = s.cfg.Levels
	}
	if levels < 0 {
		return nil, badRequest("Levels = %d, want >= 1", levels)
	}
	if err := wavelet.CheckDecomposable(req.Image.Rows, req.Image.Cols, levels); err != nil {
		return nil, badRequest("%dx%d image not decomposable to %d levels",
			req.Image.Rows, req.Image.Cols, levels)
	}
	if math.IsNaN(req.Tolerance) || math.IsInf(req.Tolerance, 0) || req.Tolerance < 0 {
		return nil, badRequest("Tolerance = %v, want a finite value >= 0", req.Tolerance)
	}
	j := &job{
		im:     req.Image,
		bank:   bank,
		levels: levels,
		key: poolKey{rows: req.Image.Rows, cols: req.Image.Cols, bank: bank.Name,
			levels: levels, tol: req.Tolerance},
		ctx:   ctx,
		start: s.now(),
		done:  make(chan jobResponse, 1),
	}

	s.mu.RLock()
	if s.stopped {
		s.mu.RUnlock()
		return nil, ErrStopped
	}
	var admitted bool
	select {
	case s.queue <- j:
		admitted = true
	default:
	}
	s.mu.RUnlock()
	if !admitted {
		s.metrics.Rejected.Add(1)
		return nil, &OverloadError{Capacity: cap(s.queue)}
	}
	s.metrics.Accepted.Add(1)
	s.metrics.QueueDepth.Observe(float64(len(s.queue)))

	select {
	case r := <-j.done:
		return r.res, r.err
	case <-ctx.Done():
		if j.handedOff.CompareAndSwap(false, true) {
			return nil, ctx.Err()
		}
		// The executor won the race and a response is in flight.
		r := <-j.done
		return r.res, r.err
	}
}

// Shutdown stops admission and drains: in-flight and already-queued
// requests complete, then the executors exit. It returns nil once every
// executor has stopped, or the context's error if draining outlasts
// it (executors keep draining regardless). Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.stopped {
		s.stopped = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// executor is one worker goroutine: it pops a job, optionally drains a
// micro-batch of compatible neighbors, and executes.
func (s *Server) executor() {
	defer s.wg.Done()
	for j := range s.queue {
		if s.execHook != nil {
			s.execHook()
		}
		if j.ctx.Err() != nil {
			s.expire(j)
			continue
		}
		batch := []*job{j}
		for len(batch) < s.cfg.BatchSize {
			select {
			case j2, ok := <-s.queue:
				if !ok {
					s.executeGroups(batch)
					return
				}
				if j2.ctx.Err() != nil {
					s.expire(j2)
					continue
				}
				batch = append(batch, j2)
			default:
				goto drained
			}
		}
	drained:
		s.executeGroups(batch)
	}
}

// expire reports a request whose context ended before execution.
func (s *Server) expire(j *job) {
	s.metrics.Expired.Add(1)
	s.respond(j, nil, j.ctx.Err())
}

// executeGroups partitions a drained batch by pool key (a micro-batch
// may have raced with unrelated traffic) and executes each group. The
// partition is in place — a stable shift of the matching jobs to the
// front — so the steady-state execution path stays allocation-free
// (hotalloc-checked via the executor's annotated callees).
func (s *Server) executeGroups(batch []*job) {
	for len(batch) > 0 {
		key := batch[0].key
		n := 0
		for i, j := range batch {
			if j.key == key {
				if i != n {
					copy(batch[n+1:i+1], batch[n:i])
					batch[n] = j
				}
				n++
			}
		}
		group := batch[:n]
		s.metrics.BatchSize.Observe(float64(len(group)))
		if len(group) == 1 {
			s.executeOne(group[0])
		} else {
			s.executeBatch(group)
		}
		batch = batch[n:]
	}
}

// executeOne runs a single request through its shape's Decomposer pool.
func (s *Server) executeOne(j *job) {
	dec := s.getDecomposer(j.key, j.bank)
	p, err := s.decompose(func() (*wavelet.Pyramid, error) { return dec.Decompose(j.im) })
	if err != nil {
		s.putDecomposer(j.key, dec)
		s.metrics.Errors.Add(1)
		s.respond(j, nil, err)
		return
	}
	key, d := j.key, dec
	res := &Result{Pyramid: p, release: func() { s.putDecomposer(key, d) }}
	s.complete(j, res)
}

// executeBatch runs a compatible group through the internal/core batch
// pool. Batch pyramids are independently allocated, so their Results
// need no release.
func (s *Server) executeBatch(group []*job) {
	images := make([]*image.Image, len(group))
	for i, j := range group {
		images[i] = j.im
	}
	j0 := group[0]
	br, err := s.decomposeBatch(images, j0.bank, j0.levels, j0.key.tol)
	if err != nil {
		for _, j := range group {
			s.metrics.Errors.Add(1)
			s.respond(j, nil, err)
		}
		return
	}
	s.metrics.BatchedImages.Add(int64(len(group)))
	for i, j := range group {
		s.complete(j, &Result{Pyramid: br.Pyramids[i]})
	}
}

func (s *Server) decomposeBatch(images []*image.Image, bank *filter.Bank, levels int, tol float64) (br *core.BatchResult, err error) {
	defer recoverToError(&err)
	return core.DecomposeBatchTolCtx(context.Background(), images, bank, s.cfg.Extension, levels, s.cfg.BatchWorkers, tol)
}

// decompose shields the serve boundary: a *wavelet.UsageError panic
// from a contract violation (or any other panic) becomes an error
// response, never a crashed executor.
func (s *Server) decompose(fn func() (*wavelet.Pyramid, error)) (p *wavelet.Pyramid, err error) {
	defer recoverToError(&err)
	return fn()
}

func recoverToError(err *error) {
	r := recover()
	if r == nil {
		return
	}
	if ue, ok := r.(*wavelet.UsageError); ok {
		*err = fmt.Errorf("serve: decomposition rejected: %w", ue)
		return
	}
	*err = fmt.Errorf("serve: decomposition panicked: %v", r)
}

// complete delivers a successful result, recording latency. If the
// requester already abandoned the job, pooled resources are reclaimed.
func (s *Server) complete(j *job, res *Result) {
	s.metrics.Completed.Add(1)
	s.metrics.Latency.Observe(s.now().Sub(j.start).Seconds())
	if !s.deliver(j, res, nil) {
		res.Close()
	}
}

// respond delivers an error response (or discards it if abandoned).
func (s *Server) respond(j *job, res *Result, err error) {
	s.deliver(j, res, err)
}

// deliver hands the response to the waiting Do unless the requester's
// context won the race; reports whether the response was taken.
func (s *Server) deliver(j *job, res *Result, err error) bool {
	if !j.handedOff.CompareAndSwap(false, true) {
		return false
	}
	j.done <- jobResponse{res: res, err: err}
	return true
}

// getDecomposer checks a Decomposer out of the key's pool, creating the
// pool (and, via sync.Pool, the Decomposer) on first use. Checked-out
// Decomposers are exclusively owned until putDecomposer.
func (s *Server) getDecomposer(key poolKey, bank *filter.Bank) *wavelet.Decomposer {
	s.poolMu.Lock()
	p, ok := s.pools[key]
	if !ok {
		ext, levels, tol := s.cfg.Extension, key.levels, key.tol
		b := bank
		p = &sync.Pool{New: func() any {
			s.created.Add(1)
			return wavelet.NewDecomposerTol(b, ext, levels, tol)
		}}
		s.pools[key] = p
	}
	s.poolMu.Unlock()
	return p.Get().(*wavelet.Decomposer)
}

func (s *Server) putDecomposer(key poolKey, d *wavelet.Decomposer) {
	s.poolMu.Lock()
	p := s.pools[key]
	s.poolMu.Unlock()
	if p != nil {
		p.Put(d)
	}
}
