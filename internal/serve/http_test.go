package serve

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"wavelethpc/internal/image"
)

func newHTTPServer(t *testing.T, cfg Config) (*Server, http.Handler) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Shutdown(context.Background()) })
	return s, s.Handler()
}

// pgmBytes renders a synthetic scene as a binary PGM. Going through
// WritePGM quantizes to integers, which is what makes the round-trip
// byte-exact.
func pgmBytes(t *testing.T, rows, cols int, seed uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := image.WritePGM(&buf, image.Landsat(rows, cols, seed)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestHTTPMosaic(t *testing.T) {
	_, h := newHTTPServer(t, Config{Workers: 1, Levels: 2})
	body := pgmBytes(t, 64, 64, 7)
	req := httptest.NewRequest(http.MethodPost, "/v1/decompose?filter=db4&levels=2", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %q", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "image/x-portable-graymap" {
		t.Errorf("Content-Type = %q", ct)
	}
	out, err := image.ReadPGM(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows != 64 || out.Cols != 64 {
		t.Errorf("mosaic is %dx%d, want 64x64", out.Rows, out.Cols)
	}
}

// TestHTTPRoundTrip: for integer-valued input and an orthonormal bank,
// reconstruction error (~1e-10) cannot cross a rounding boundary, so the
// response bytes must equal the request bytes exactly. This is the same
// check the CI smoke job performs with cmp.
func TestHTTPRoundTrip(t *testing.T) {
	_, h := newHTTPServer(t, Config{Workers: 1, Levels: 3})
	body := pgmBytes(t, 64, 64, 3)
	req := httptest.NewRequest(http.MethodPost, "/v1/decompose?output=roundtrip", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %q", rec.Code, rec.Body.String())
	}
	if !bytes.Equal(rec.Body.Bytes(), body) {
		t.Fatal("round-trip PGM differs from input")
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, h := newHTTPServer(t, Config{Workers: 1, Levels: 2})
	good := pgmBytes(t, 64, 64, 1)
	cases := []struct {
		name, target string
		body         []byte
		wantStatus   int
	}{
		{"bad filter", "/v1/decompose?filter=nope", good, http.StatusBadRequest},
		{"bad levels", "/v1/decompose?levels=0", good, http.StatusBadRequest},
		{"bad output", "/v1/decompose?output=gif", good, http.StatusBadRequest},
		{"garbage body", "/v1/decompose", []byte("not a pgm"), http.StatusBadRequest},
		{"undecomposable", "/v1/decompose?levels=9", good, http.StatusBadRequest},
	}
	for _, c := range cases {
		req := httptest.NewRequest(http.MethodPost, c.target, bytes.NewReader(c.body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != c.wantStatus {
			t.Errorf("%s: status = %d, want %d (body %q)", c.name, rec.Code, c.wantStatus, rec.Body.String())
		}
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/decompose", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET: status = %d, want 405", rec.Code)
	}
}

// TestHTTPOverload: a full queue surfaces as 503 with a Retry-After
// hint, the HTTP face of the deterministic *OverloadError rejection.
func TestHTTPOverload(t *testing.T) {
	s, h := newHTTPServer(t, Config{Workers: 1, QueueDepth: 1, Levels: 1})
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	s.execHook = func() {
		entered <- struct{}{}
		<-gate
	}
	defer close(gate)
	body := pgmBytes(t, 32, 32, 2)

	post := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/decompose", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}
	go post() // held by the worker
	<-entered
	go post() // fills the queue
	waitCounter(t, &s.metrics.Accepted, 2)

	rec := post()
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (body %q)", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
}

func TestHTTPHealthzAndMetrics(t *testing.T) {
	s, h := newHTTPServer(t, Config{Workers: 1, Levels: 2})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz = %d %q", rec.Code, rec.Body.String())
	}

	// One request so the counters are non-zero.
	req := httptest.NewRequest(http.MethodPost, "/v1/decompose", bytes.NewReader(pgmBytes(t, 64, 64, 4)))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("decompose = %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	for _, want := range []string{
		"waveserve_accepted_total 1",
		"waveserve_completed_total 1",
		"waveserve_latency_seconds_count 1",
		`waveserve_latency_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz after Shutdown = %d, want 503", rec.Code)
	}
}

func TestHTTPBanksEndpoint(t *testing.T) {
	_, h := newHTTPServer(t, Config{Workers: 1, Levels: 1})
	req := httptest.NewRequest(http.MethodGet, "/v1/banks", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	lines := strings.Fields(rec.Body.String())
	if len(lines) < 18 {
		t.Fatalf("banks endpoint lists %d names, want >= 18: %v", len(lines), lines)
	}
	seen := map[string]bool{}
	for _, l := range lines {
		seen[l] = true
	}
	for _, want := range []string{"haar", "db8", "sym8", "bior4.4", "cdf5/3", "rbio2.2"} {
		if !seen[want] {
			t.Errorf("banks endpoint missing %q", want)
		}
	}

	post := httptest.NewRequest(http.MethodPost, "/v1/banks", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, post)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/banks status = %d, want 405", rec.Code)
	}
}

func TestHTTPBankParam(t *testing.T) {
	_, h := newHTTPServer(t, Config{Workers: 1, Levels: 2})
	body := pgmBytes(t, 64, 64, 11)

	// bank= is an alias of filter=; a biorthogonal bank round-trips.
	req := httptest.NewRequest(http.MethodPost, "/v1/decompose?bank=bior4.4&levels=2&output=roundtrip", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("bank=bior4.4 status = %d, body %q", rec.Code, rec.Body.String())
	}

	// Matching filter= and bank= is allowed; conflicting values are 400.
	req = httptest.NewRequest(http.MethodPost, "/v1/decompose?filter=db4&bank=db4&levels=1", bytes.NewReader(body))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("matching filter/bank status = %d", rec.Code)
	}
	req = httptest.NewRequest(http.MethodPost, "/v1/decompose?filter=db4&bank=haar&levels=1", bytes.NewReader(body))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("conflicting filter/bank status = %d, want 400", rec.Code)
	}

	// Unknown names surface the catalog in the error body.
	req = httptest.NewRequest(http.MethodPost, "/v1/decompose?bank=db5&levels=1", bytes.NewReader(body))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown bank status = %d, want 400", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "bior4.4") {
		t.Errorf("unknown-bank error does not list the catalog: %q", rec.Body.String())
	}
}
