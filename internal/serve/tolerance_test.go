package serve

import (
	"bytes"
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
	"wavelethpc/internal/wavelet"
)

// Tolerance plumbing through the service layer: Request.Tolerance and
// the tol= query parameter select the lifting tier per request, pooled
// Decomposers are keyed by tolerance so tiers never mix, and
// out-of-range values are rejected with the typed *wavelet.UsageError
// the HTTP layer maps to 400.

func liftEps(t *testing.T) float64 {
	t.Helper()
	sch := wavelet.LiftingFor(filter.Daubechies8(), filter.Periodic, 1)
	if sch == nil {
		t.Fatal("db8/periodic should admit lifting")
	}
	return sch.Eps
}

// TestDoToleranceWithinDrift: a tolerant request completes and stays
// within the advertised drift of the zero-tolerance result.
func TestDoToleranceWithinDrift(t *testing.T) {
	s, err := New(Config{Workers: 1, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	eps := liftEps(t)
	im := image.Landsat(64, 64, 21)

	exact, err := s.Do(context.Background(), Request{Image: im})
	if err != nil {
		t.Fatal(err)
	}
	ref := exact.Detach()
	res, err := s.Do(context.Background(), Request{Image: im, Tolerance: eps})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	var maxDiff, maxRef float64
	accum := func(a, b *image.Image) {
		for r := 0; r < a.Rows; r++ {
			ra, rb := a.Row(r), b.Row(r)
			for c := range ra {
				maxDiff = math.Max(maxDiff, math.Abs(ra[c]-rb[c]))
				maxRef = math.Max(maxRef, math.Abs(ra[c]))
			}
		}
	}
	accum(ref.Approx, res.Pyramid.Approx)
	for i := range ref.Levels {
		accum(ref.Levels[i].LH, res.Pyramid.Levels[i].LH)
		accum(ref.Levels[i].HL, res.Pyramid.Levels[i].HL)
		accum(ref.Levels[i].HH, res.Pyramid.Levels[i].HH)
	}
	if maxDiff/maxRef > eps {
		t.Errorf("tolerant result drifts %.3g from exact, want <= %.3g", maxDiff/maxRef, eps)
	}
	if maxDiff == 0 {
		t.Log("note: lifting and convolution agreed exactly on this fixture")
	}
}

// TestDoToleranceRejectsOutOfRange: negative and non-finite tolerances
// are rejected up front with the typed usage error.
func TestDoToleranceRejectsOutOfRange(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	im := image.Landsat(16, 16, 1)
	for _, tol := range []float64{-1, -1e-300, math.NaN(), math.Inf(1), math.Inf(-1)} {
		_, err := s.Do(context.Background(), Request{Image: im, Tolerance: tol})
		var ue *wavelet.UsageError
		if !errors.As(err, &ue) {
			t.Errorf("Tolerance=%v: err = %v, want *wavelet.UsageError", tol, err)
		}
	}
}

// TestTolerancePoolsSeparate: requests at different tolerances must use
// different Decomposer pools — a lifting-tier Decomposer serving a
// zero-tolerance request would silently break bit-identity.
func TestTolerancePoolsSeparate(t *testing.T) {
	s, err := New(Config{Workers: 1, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	eps := liftEps(t)
	im := image.Landsat(32, 32, 2)
	for _, tol := range []float64{0, eps, 0, eps} {
		res, err := s.Do(context.Background(), Request{Image: im, Tolerance: tol})
		if err != nil {
			t.Fatal(err)
		}
		res.Close()
	}
	if got := s.CreatedDecomposers(); got != 2 {
		t.Errorf("CreatedDecomposers = %d, want 2 (one per tolerance class)", got)
	}
}

// TestHTTPToleranceParam covers the tol= query surface: a valid value
// decomposes (roundtrip still byte-exact for integer input, since the
// drift is orders of magnitude below the quantization step), a
// malformed value is 400 at parse, and an out-of-range value is 400 via
// the typed error path.
func TestHTTPToleranceParam(t *testing.T) {
	_, h := newHTTPServer(t, Config{Workers: 1, Levels: 3})
	body := pgmBytes(t, 64, 64, 3)

	req := httptest.NewRequest(http.MethodPost, "/v1/decompose?output=roundtrip&tol=1e-6", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("tol=1e-6: status = %d, body %q", rec.Code, rec.Body.String())
	}
	if !bytes.Equal(rec.Body.Bytes(), body) {
		t.Error("tol=1e-6 round-trip PGM differs from input (drift crossed a quantization boundary)")
	}

	for _, bad := range []string{"tol=abc", "tol=-0.5", "tol=NaN", "tol=+Inf"} {
		req := httptest.NewRequest(http.MethodPost, "/v1/decompose?"+bad, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %q)", bad, rec.Code, rec.Body.String())
		}
	}
}

// TestBatchCarriesTolerance: micro-batched compatible requests share a
// tolerance class and still complete within drift.
func TestBatchCarriesTolerance(t *testing.T) {
	s, err := New(Config{Workers: 1, Levels: 2, BatchSize: 4, BatchWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	eps := liftEps(t)
	im := image.Landsat(32, 32, 9)
	ref, err := wavelet.Decompose(im, filter.Daubechies8(), filter.Periodic, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		res, err := s.Do(context.Background(), Request{Image: im, Tolerance: eps})
		if err != nil {
			t.Fatal(err)
		}
		var maxDiff, maxRef float64
		for r := 0; r < ref.Approx.Rows; r++ {
			ra, rb := ref.Approx.Row(r), res.Pyramid.Approx.Row(r)
			for c := range ra {
				maxDiff = math.Max(maxDiff, math.Abs(ra[c]-rb[c]))
				maxRef = math.Max(maxRef, math.Abs(ra[c]))
			}
		}
		res.Close()
		if maxDiff/maxRef > eps {
			t.Fatalf("batched tolerant result drifts %.3g, want <= %.3g", maxDiff/maxRef, eps)
		}
	}
}
