package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"wavelethpc/internal/filter"
	"wavelethpc/internal/proto"
	"wavelethpc/internal/wavelet"
)

// maxBodyBytes bounds an uploaded PGM. A maxPGMPixels-sized image is
// ~16 MiB of pixel bytes; 32 MiB leaves header room without letting a
// client stream unbounded data at the decoder.
const maxBodyBytes = 32 << 20

// Handler returns the service's HTTP surface:
//
//	POST /v1/decompose  One request, three wire forms (internal/proto):
//	                    legacy binary PGM body with query params
//	                    (filter or bank — any registered bank name, e.g.
//	                    db4, sym6, bior4.4, default server; levels,
//	                    default server; tol — relative drift tolerance
//	                    opting into the lifting fast tier, default 0 =
//	                    bit-identical, negative/NaN/Inf rejected with
//	                    400; output=mosaic|roundtrip|pyramid, default
//	                    mosaic), the versioned v1 JSON body form
//	                    (Content-Type: application/json), or the exact
//	                    float64 raster form (application/x-wavelet-raster,
//	                    used by the gateway tiling path). Responses are
//	                    PGM (mosaic/roundtrip) or the exact binary
//	                    pyramid codec (output=pyramid); errors are the
//	                    proto JSON envelope with a stable code field.
//	GET  /v1/banks      Registered bank names, one per line.
//	GET  /healthz       200 "ok" while accepting work, 503 after Shutdown
//	                    (liveness: is the process worth talking to at all).
//	GET  /readyz        200 JSON while able to admit more work; 503 with
//	                    the same JSON body (queue depth, capacity,
//	                    draining) when the admission queue is saturated or
//	                    shutdown has begun — readiness: should a gateway
//	                    route the next request here. Separating the two
//	                    lets passive health checks see overload before
//	                    hard rejection.
//	GET  /metrics       Prometheus text exposition of the registry.
//
// output=mosaic renders the classical pyramid mosaic normalized to
// [0, 255]; output=roundtrip reconstructs the pyramid and returns the
// reconstruction — for integer-valued input the bytes equal the input
// PGM exactly, which the CI smoke test checks end to end.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/decompose", s.handleDecompose)
	mux.HandleFunc("/v1/banks", s.handleBanks)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleDecompose(w http.ResponseWriter, r *http.Request) {
	// All request parsing — wire-form detection, query params, JSON
	// envelope, image decoding — lives in internal/proto, shared with the
	// gateway. Tolerance range validation (negative, NaN, Inf) stays in
	// Do, which rejects with a typed *wavelet.UsageError mapped to 400.
	preq, perr := proto.ParseDecompose(w, r, maxBodyBytes)
	if perr != nil {
		proto.WriteError(w, perr)
		return
	}
	res, err := s.Do(r.Context(), Request{
		Image:     preq.Image,
		Bank:      preq.Bank,
		Levels:    preq.Levels,
		Tolerance: preq.Tol,
	})
	if err != nil {
		proto.WriteError(w, DoErrorEnvelope(err))
		return
	}
	defer res.Close()
	if err := proto.WriteDecomposeResponse(w, res.Pyramid, preq.Output); err != nil {
		// Headers are gone; nothing more to do than drop the conn.
		return
	}
}

// DoErrorEnvelope maps a Do error onto the proto error envelope:
// overload and shutdown are 503 (overload with Retry-After so
// well-behaved clients back off), an expired deadline is 504,
// client-side misuse is 400 — each with its stable machine-readable
// code.
func DoErrorEnvelope(err error) *proto.Error {
	var oe *OverloadError
	var ue *wavelet.UsageError
	switch {
	case errors.As(err, &oe):
		e := proto.NewError(http.StatusServiceUnavailable, proto.CodeOverload, "%v", err)
		e.RetryAfterSec = 1
		return e
	case errors.Is(err, ErrStopped):
		return proto.NewError(http.StatusServiceUnavailable, proto.CodeDraining, "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		return proto.NewError(http.StatusGatewayTimeout, proto.CodeDeadline, "%v", err)
	case errors.Is(err, context.Canceled):
		return proto.NewError(http.StatusServiceUnavailable, proto.CodeCanceled, "%v", err)
	case errors.As(err, &ue):
		return proto.NewError(http.StatusBadRequest, proto.CodeBadRequest, "%v", err)
	default:
		return proto.NewError(http.StatusInternalServerError, proto.CodeInternal, "%v", err)
	}
}

// handleBanks lists the registered filter banks, one name per line —
// the discovery endpoint behind CLI -list-banks style tooling.
func (s *Server) handleBanks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, name := range filter.Names() {
		fmt.Fprintln(w, name)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	stopped := s.stopped
	s.mu.RUnlock()
	if stopped {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// readyzBody is the /readyz JSON document: enough for a gateway's
// passive health check to see overload building before the queue starts
// hard-rejecting.
type readyzBody struct {
	Ready    bool `json:"ready"`
	Draining bool `json:"draining"`
	Queue    int  `json:"queue"`
	Capacity int  `json:"capacity"`
}

// handleReadyz reports admission readiness, distinct from /healthz
// liveness: a saturated queue or a draining server answers 503 while the
// process itself is still perfectly alive.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	stopped := s.stopped
	s.mu.RUnlock()
	body := readyzBody{
		Draining: stopped,
		Queue:    len(s.queue),
		Capacity: cap(s.queue),
	}
	body.Ready = !body.Draining && body.Queue < body.Capacity
	w.Header().Set("Content-Type", "application/json")
	if !body.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap := s.metrics.Snapshot()
	snap.WriteProm(w)
}
