package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
	"wavelethpc/internal/wavelet"
)

// maxBodyBytes bounds an uploaded PGM. A maxPGMPixels-sized image is
// ~16 MiB of pixel bytes; 32 MiB leaves header room without letting a
// client stream unbounded data at the decoder.
const maxBodyBytes = 32 << 20

// Handler returns the service's HTTP surface:
//
//	POST /v1/decompose  PGM (binary P5) in, PGM out.
//	                    Query: filter or bank (any registered bank name,
//	                    e.g. db4, sym6, bior4.4; default server),
//	                    levels (default server),
//	                    tol (relative drift tolerance opting into the
//	                    lifting fast tier; default 0 = bit-identical,
//	                    negative/NaN/Inf rejected with 400),
//	                    output=mosaic|roundtrip (default mosaic).
//	GET  /v1/banks      Registered bank names, one per line.
//	GET  /healthz       200 "ok" while accepting work, 503 after Shutdown
//	                    (liveness: is the process worth talking to at all).
//	GET  /readyz        200 JSON while able to admit more work; 503 with
//	                    the same JSON body (queue depth, capacity,
//	                    draining) when the admission queue is saturated or
//	                    shutdown has begun — readiness: should a gateway
//	                    route the next request here. Separating the two
//	                    lets passive health checks see overload before
//	                    hard rejection.
//	GET  /metrics       Prometheus text exposition of the registry.
//
// output=mosaic renders the classical pyramid mosaic normalized to
// [0, 255]; output=roundtrip reconstructs the pyramid and returns the
// reconstruction — for integer-valued input the bytes equal the input
// PGM exactly, which the CI smoke test checks end to end.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/decompose", s.handleDecompose)
	mux.HandleFunc("/v1/banks", s.handleBanks)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleDecompose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a binary PGM body", http.StatusMethodNotAllowed)
		return
	}
	req := Request{}
	q := r.URL.Query()
	name := q.Get("filter")
	if b := q.Get("bank"); b != "" {
		if name != "" && b != name {
			http.Error(w, fmt.Sprintf("conflicting filter=%q and bank=%q", name, b), http.StatusBadRequest)
			return
		}
		name = b
	}
	if name != "" {
		bank, err := filter.ByName(name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req.Bank = bank
	}
	if lv := q.Get("levels"); lv != "" {
		n, err := strconv.Atoi(lv)
		if err != nil || n < 1 {
			http.Error(w, fmt.Sprintf("bad levels %q", lv), http.StatusBadRequest)
			return
		}
		req.Levels = n
	}
	if tv := q.Get("tol"); tv != "" {
		eps, err := strconv.ParseFloat(tv, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad tol %q", tv), http.StatusBadRequest)
			return
		}
		// Range validation (negative, NaN, Inf) happens in Do, which
		// rejects with a typed *wavelet.UsageError mapped to 400.
		req.Tolerance = eps
	}
	output := q.Get("output")
	if output == "" {
		output = "mosaic"
	}
	if output != "mosaic" && output != "roundtrip" {
		http.Error(w, fmt.Sprintf("bad output %q (mosaic or roundtrip)", output), http.StatusBadRequest)
		return
	}
	im, err := image.ReadPGM(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req.Image = im

	res, err := s.Do(r.Context(), req)
	if err != nil {
		writeDoError(w, err)
		return
	}
	defer res.Close()
	var out *image.Image
	switch output {
	case "roundtrip":
		out = wavelet.Reconstruct(res.Pyramid)
	default:
		out = res.Pyramid.Mosaic()
		out.Normalize(0, 255)
	}
	w.Header().Set("Content-Type", "image/x-portable-graymap")
	if err := image.WritePGM(w, out); err != nil {
		// Headers are gone; nothing more to do than drop the conn.
		return
	}
}

// writeDoError maps service errors onto HTTP statuses: overload and
// shutdown are 503 (overload with Retry-After so well-behaved clients
// back off), an expired deadline is 504, client-side misuse is 400.
func writeDoError(w http.ResponseWriter, err error) {
	var oe *OverloadError
	var ue *wavelet.UsageError
	switch {
	case errors.As(err, &oe):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ErrStopped):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.As(err, &ue):
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleBanks lists the registered filter banks, one name per line —
// the discovery endpoint behind CLI -list-banks style tooling.
func (s *Server) handleBanks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, name := range filter.Names() {
		fmt.Fprintln(w, name)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	stopped := s.stopped
	s.mu.RUnlock()
	if stopped {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// readyzBody is the /readyz JSON document: enough for a gateway's
// passive health check to see overload building before the queue starts
// hard-rejecting.
type readyzBody struct {
	Ready    bool `json:"ready"`
	Draining bool `json:"draining"`
	Queue    int  `json:"queue"`
	Capacity int  `json:"capacity"`
}

// handleReadyz reports admission readiness, distinct from /healthz
// liveness: a saturated queue or a draining server answers 503 while the
// process itself is still perfectly alive.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	stopped := s.stopped
	s.mu.RUnlock()
	body := readyzBody{
		Draining: stopped,
		Queue:    len(s.queue),
		Capacity: cap(s.queue),
	}
	body.Ready = !body.Draining && body.Queue < body.Capacity
	w.Header().Set("Content-Type", "application/json")
	if !body.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap := s.metrics.Snapshot()
	snap.WriteProm(w)
}
