// Package simd models the MasPar MP-1/MP-2 SIMD array machines of the
// paper's fine-grain experiments: a PE grid driven by an array control
// unit (ACU) that broadcasts filter coefficients, with X-net
// nearest-neighbor shifts and a cluster-serialized global router.
//
// Two wavelet algorithms are implemented, following [El-Ghaz94] and
// [Chan95] as summarized in the paper's Section 4.1:
//
//   - systolic: broadcast each filter element from last to first; each PE
//     multiply-accumulates and shifts its partial result one PE left over
//     the X-net; decimation then compacts results through the global
//     router.
//   - systolic with dilution: the filter is diluted (stretched with
//     zeros) so it aligns with the surviving pixels in place, avoiding
//     the global router at the cost of longer shifts at deeper levels.
//
// Two virtualization schemes map images larger than the PE array:
// cut-and-stack (layers of PE-array-sized tiles, every shift crossing PE
// boundaries) and hierarchical (each PE owns a contiguous subimage, most
// shifts staying PE-local) — the paper reports hierarchical wins on data
// locality.
//
// The functional algorithms below execute the actual SIMD step sequence on
// a logical PE array, so their outputs are verified bit-for-bit against
// the direct convolution; the cycle model then prices exactly those steps.
package simd

import (
	"fmt"

	"wavelethpc/internal/filter"
)

// Algorithm selects the decimation strategy.
type Algorithm int

const (
	// Systolic uses the global router for decimation.
	Systolic Algorithm = iota
	// Dilution stretches the filter to avoid the router.
	Dilution
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	if a == Dilution {
		return "dilution"
	}
	return "systolic"
}

// Virtualization selects how oversized images map onto the PE array.
type Virtualization int

const (
	// Hierarchical gives each PE a contiguous subimage.
	Hierarchical Virtualization = iota
	// CutAndStack tiles the image into PE-array-sized layers.
	CutAndStack
)

// String returns the virtualization name.
func (v Virtualization) String() string {
	if v == CutAndStack {
		return "cut-and-stack"
	}
	return "hierarchical"
}

// Machine is a MasPar-style SIMD array with calibrated cycle costs.
type Machine struct {
	Name         string
	GridX, GridY int     // PE array shape (128×128 for a 16K machine)
	ClockHz      float64 // PE clock

	// Per-step cycle costs of the systolic inner loop.
	BroadcastCycles float64 // ACU broadcast of one coefficient
	MACCycles       float64 // one multiply-accumulate on every PE
	MemShiftCycles  float64 // PE-local shift of one partial result
	XNetCycles      float64 // X-net shift of one word, per hop

	// Router and bookkeeping costs.
	RouterCycles float64 // per word moved through the global router
	OutputCycles float64 // per output coefficient (addressing + store)
	LevelCycles  float64 // per decomposition level of ACU control
}

// PEs returns the processor-element count.
func (m *Machine) PEs() int { return m.GridX * m.GridY }

// MP2 returns the 16K-PE MasPar MP-2 with cycle costs calibrated so the
// systolic/hierarchical algorithm reproduces the paper's Table 1 MasPar
// row (0.0169 / 0.0138 / 0.0123 seconds for F8/L1, F4/L2, F2/L4 on a
// 512×512 image) — see EXPERIMENTS.md for the three-parameter fit.
func MP2() *Machine {
	return &Machine{
		Name:    "maspar-mp2",
		GridX:   128,
		GridY:   128,
		ClockHz: 12.5e6,

		BroadcastCycles: 50,
		MACCycles:       450,
		MemShiftCycles:  133,
		XNetCycles:      400,

		RouterCycles: 800,
		OutputCycles: 334,
		LevelCycles:  12934,
	}
}

// MP1 returns the first-generation MasPar with 4-bit PEs: floating-point
// multiply-accumulate is emulated and roughly an order of magnitude
// slower, while the network costs are comparable.
func MP1() *Machine {
	m := MP2()
	m.Name = "maspar-mp1"
	m.MACCycles = 4200
	m.BroadcastCycles = 60
	return m
}

// stepCycles is the cost of one broadcast–MAC–shift systolic step for the
// given algorithm/virtualization at decomposition level k (0-based).
func (m *Machine) stepCycles(alg Algorithm, virt Virtualization, level int) float64 {
	base := m.BroadcastCycles + m.MACCycles
	shift := 1 << uint(level) // dilution stretches shifts at deeper levels
	if alg == Systolic {
		shift = 1
	}
	if virt == Hierarchical {
		return base + m.MemShiftCycles*float64(shift)
	}
	return base + m.XNetCycles*float64(shift)
}

// DecomposeTime prices a levels-deep decomposition of an n×n image with a
// length-f filter: per level, every output coefficient costs f systolic
// steps, plus per-output overhead (router decimation for the systolic
// algorithm), plus per-level ACU control.
func (m *Machine) DecomposeTime(alg Algorithm, virt Virtualization, n, f, levels int) (float64, error) {
	if n <= 0 || f <= 0 || levels <= 0 {
		return 0, fmt.Errorf("simd: invalid decomposition %dx%d f=%d levels=%d", n, n, f, levels)
	}
	if n%(1<<uint(levels)) != 0 {
		return 0, fmt.Errorf("simd: %d not divisible by 2^%d", n, levels)
	}
	pes := float64(m.PEs())
	var cycles float64
	size := n
	for l := 0; l < levels; l++ {
		// Row pass + column pass outputs per level, averaged per PE.
		outputsPerPE := 2 * float64(size) * float64(size) / pes
		steps := outputsPerPE * float64(f)
		cycles += steps * m.stepCycles(alg, virt, l)
		perOut := m.OutputCycles
		if alg == Systolic {
			perOut += m.RouterCycles
		}
		cycles += outputsPerPE * perOut
		cycles += m.LevelCycles
		size /= 2
	}
	return cycles / m.ClockHz, nil
}

// Table1MasPar returns the MP-2 systolic/hierarchical seconds for the
// paper's three configurations on a 512×512 image — the MasPar row of
// Table 1.
func Table1MasPar() [3]float64 {
	m := MP2()
	var out [3]float64
	configs := []struct{ f, l int }{{8, 1}, {4, 2}, {2, 4}}
	for i, c := range configs {
		t, err := m.DecomposeTime(Systolic, Hierarchical, 512, c.f, c.l)
		if err != nil {
			panic(err)
		}
		out[i] = t
	}
	return out
}

// ImagesPerSecond converts a decomposition time into a processing rate —
// the paper reports the MasPar sustaining "30 images or more per second".
func ImagesPerSecond(decomposeSeconds float64) float64 {
	if decomposeSeconds <= 0 {
		return 0
	}
	return 1 / decomposeSeconds
}

// Dilute re-exports filter.Dilute for the dilution algorithm's
// functional form.
func Dilute(f []float64, s int) []float64 { return filter.Dilute(f, s) }
