package simd

import (
	"fmt"

	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
	"wavelethpc/internal/wavelet"
)

// SystolicConvolve executes the MasPar systolic step sequence on a logical
// ring of len(x) PEs: the ACU broadcasts filter elements from last to
// first; every PE multiply-accumulates the broadcast coefficient with its
// own pixel and then shifts its partial sum one PE to the left over the
// X-net. After len(h) steps PE i holds Σ_k h[k]·x[(i+k) mod n] — the
// undecimated periodic correlation.
func SystolicConvolve(x, h []float64) []float64 {
	n := len(x)
	acc := make([]float64, n)
	if n == 0 {
		return acc
	}
	for k := len(h) - 1; k >= 0; k-- {
		coeff := h[k] // ACU broadcast
		for i := 0; i < n; i++ {
			acc[i] += coeff * x[i] // simultaneous MAC on every PE
		}
		if k > 0 {
			shiftLeft(acc, 1)
		}
	}
	return acc
}

// shiftLeft rotates the PE ring contents dist positions left (each PE
// receives its right neighbor's value), the X-net toroidal shift.
func shiftLeft(acc []float64, dist int) {
	n := len(acc)
	dist %= n
	if dist == 0 {
		return
	}
	tmp := make([]float64, dist)
	copy(tmp, acc[:dist])
	copy(acc, acc[dist:])
	copy(acc[n-dist:], tmp)
}

// RouterDecimate models the global-router compaction of the systolic
// algorithm: even-indexed partial results are gathered into a
// half-length array.
func RouterDecimate(acc []float64) []float64 {
	out := make([]float64, len(acc)/2)
	for j := range out {
		out[j] = acc[2*j]
	}
	return out
}

// DilutedConvolve executes the dilution variant: the filter is stretched
// by the stride, so PE i accumulates Σ_k h[k]·x[(i + k·stride) mod n]
// with shifts of the stride distance instead of router compaction.
// Positions that are multiples of 2·stride then hold the next level's
// live coefficients in place.
func DilutedConvolve(x, h []float64, stride int) []float64 {
	if stride < 1 {
		panic("simd: stride must be >= 1")
	}
	n := len(x)
	acc := make([]float64, n)
	if n == 0 {
		return acc
	}
	for k := len(h) - 1; k >= 0; k-- {
		coeff := h[k]
		for i := 0; i < n; i++ {
			acc[i] += coeff * x[i]
		}
		if k > 0 {
			shiftLeft(acc, stride)
		}
	}
	return acc
}

// SystolicAnalyze1D performs one analysis level on the PE ring with the
// systolic algorithm (router decimation), returning approximation and
// detail vectors identical to wavelet.Analyze1D with periodic extension.
func SystolicAnalyze1D(x []float64, bank *filter.Bank) (approx, detail []float64) {
	if len(x)%2 != 0 {
		panic(fmt.Sprintf("simd: odd signal length %d", len(x)))
	}
	return RouterDecimate(SystolicConvolve(x, bank.DecLo)), RouterDecimate(SystolicConvolve(x, bank.DecHi))
}

// DilutedDecompose1D performs a full multi-level decomposition with the
// dilution algorithm: coefficients stay in place on the PE ring, with
// live positions striding 2^level apart. It returns the same result as
// wavelet.Decompose1D.
func DilutedDecompose1D(x []float64, bank *filter.Bank, levels int) (*wavelet.Decomposition1D, error) {
	if levels < 1 {
		return nil, fmt.Errorf("simd: levels = %d", levels)
	}
	if len(x)%(1<<uint(levels)) != 0 {
		return nil, fmt.Errorf("simd: length %d not divisible by 2^%d", len(x), levels)
	}
	d := &wavelet.Decomposition1D{Bank: bank, Ext: filter.Periodic, Details: make([][]float64, levels)}
	live := make([]float64, len(x))
	copy(live, x)
	for l := 0; l < levels; l++ {
		stride := 1 << uint(l)
		// Dilute the filters and convolve in place; live coefficients
		// sit at multiples of stride, next level's at 2·stride.
		lo := DilutedConvolve(live, bank.DecLo, stride)
		hi := DilutedConvolve(live, bank.DecHi, stride)
		// Detail coefficients of this level: hi at even live positions.
		det := extractStrided(hi, 2*stride)
		d.Details[levels-1-l] = det
		// The diluted convolution touched every position; only the
		// stride-aligned ones are meaningful for the next level.
		live = lo
	}
	d.Approx = extractStrided(live, 1<<uint(levels))
	return d, nil
}

// extractStrided gathers positions 0, s, 2s, ... of x.
func extractStrided(x []float64, s int) []float64 {
	out := make([]float64, len(x)/s)
	for i := range out {
		out[i] = x[i*s]
	}
	return out
}

// SystolicAnalyze2D performs one separable 2-D decomposition level with
// the systolic row/column passes, matching wavelet.Analyze2D with
// periodic extension.
func SystolicAnalyze2D(im *image.Image, bank *filter.Bank) *wavelet.Subbands {
	if im.Cols%2 != 0 || im.Rows%2 != 0 {
		panic(fmt.Sprintf("simd: odd image %dx%d", im.Rows, im.Cols))
	}
	l := image.New(im.Rows, im.Cols/2)
	h := image.New(im.Rows, im.Cols/2)
	for r := 0; r < im.Rows; r++ {
		a, d := SystolicAnalyze1D(im.Row(r), bank)
		copy(l.Row(r), a)
		copy(h.Row(r), d)
	}
	cols := func(src *image.Image) (lo, hi *image.Image) {
		lo = image.New(src.Rows/2, src.Cols)
		hi = image.New(src.Rows/2, src.Cols)
		buf := make([]float64, src.Rows)
		for c := 0; c < src.Cols; c++ {
			buf = src.Col(c, buf)
			a, d := SystolicAnalyze1D(buf, bank)
			lo.SetCol(c, a)
			hi.SetCol(c, d)
		}
		return lo, hi
	}
	ll, lh := cols(l)
	hl, hh := cols(h)
	return &wavelet.Subbands{LL: ll, LH: lh, HL: hl, HH: hh}
}

// SystolicDecompose runs a full multi-level 2-D decomposition with the
// systolic algorithm, producing the same pyramid as wavelet.Decompose.
func SystolicDecompose(im *image.Image, bank *filter.Bank, levels int) (*wavelet.Pyramid, error) {
	if err := wavelet.CheckDecomposable(im.Rows, im.Cols, levels); err != nil {
		return nil, err
	}
	p := &wavelet.Pyramid{Bank: bank, Ext: filter.Periodic, Levels: make([]wavelet.DetailBands, levels)}
	cur := im
	for l := 0; l < levels; l++ {
		sb := SystolicAnalyze2D(cur, bank)
		p.Levels[levels-1-l] = wavelet.DetailBands{LH: sb.LH, HL: sb.HL, HH: sb.HH}
		cur = sb.LL
	}
	p.Approx = cur
	return p, nil
}

// SystolicConvolveRight is the synthesis-direction systolic sequence: the
// ACU broadcasts filter elements from last to first while partial sums
// shift one PE to the RIGHT, yielding the periodic convolution
// acc[i] = Σ_k h[k]·x[(i-k) mod n].
func SystolicConvolveRight(x, h []float64) []float64 {
	n := len(x)
	acc := make([]float64, n)
	if n == 0 {
		return acc
	}
	for k := len(h) - 1; k >= 0; k-- {
		coeff := h[k]
		for i := 0; i < n; i++ {
			acc[i] += coeff * x[i]
		}
		if k > 0 {
			shiftRight(acc, 1)
		}
	}
	return acc
}

// shiftRight rotates the PE ring contents dist positions right.
func shiftRight(acc []float64, dist int) {
	n := len(acc)
	dist %= n
	shiftLeft(acc, n-dist)
}

// upsample2 inserts a zero after every coefficient — the router-free dual
// of decimation for the synthesis pass.
func upsample2(c []float64) []float64 {
	out := make([]float64, 2*len(c))
	for i, v := range c {
		out[2*i] = v
	}
	return out
}

// SystolicSynthesize1D inverts SystolicAnalyze1D on the PE ring: the
// coefficient vectors are upsampled in place and convolved (rightward
// systolic) with the same bank, reproducing wavelet.Synthesize1D exactly.
func SystolicSynthesize1D(approx, detail []float64, bank *filter.Bank) []float64 {
	if len(approx) != len(detail) {
		panic("simd: synthesis length mismatch")
	}
	lo := SystolicConvolveRight(upsample2(approx), bank.RecLo)
	hi := SystolicConvolveRight(upsample2(detail), bank.RecHi)
	out := make([]float64, len(lo))
	for i := range out {
		out[i] = lo[i] + hi[i]
	}
	return out
}

// SystolicReconstruct inverts SystolicDecompose, running the synthesis
// step sequence level by level (the paper's Figure 2 on the SIMD array).
func SystolicReconstruct(p *wavelet.Pyramid) *image.Image {
	cur := p.Approx
	for _, d := range p.Levels {
		// Column synthesis: merge (cur, LH) and (HL, HH) column-wise.
		merge := func(lo, hi *image.Image) *image.Image {
			out := image.New(lo.Rows*2, lo.Cols)
			bufLo := make([]float64, lo.Rows)
			bufHi := make([]float64, lo.Rows)
			for c := 0; c < lo.Cols; c++ {
				bufLo = lo.Col(c, bufLo)
				bufHi = hi.Col(c, bufHi)
				out.SetCol(c, SystolicSynthesize1D(bufLo, bufHi, p.Bank))
			}
			return out
		}
		l := merge(cur, d.LH)
		h := merge(d.HL, d.HH)
		// Row synthesis.
		out := image.New(l.Rows, l.Cols*2)
		for r := 0; r < l.Rows; r++ {
			copy(out.Row(r), SystolicSynthesize1D(l.Row(r), h.Row(r), p.Bank))
		}
		cur = out
	}
	return cur
}
