package simd

import (
	"math"
	"testing"
)

func mustLayout(t *testing.T, virt Virtualization, n int) *Layout {
	t.Helper()
	l, err := NewLayout(MP2(), virt, n)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewLayoutValidation(t *testing.T) {
	if _, err := NewLayout(MP2(), Hierarchical, 100); err == nil {
		t.Error("non-multiple side accepted")
	}
	if _, err := NewLayout(MP2(), Hierarchical, 64); err == nil {
		t.Error("side smaller than grid accepted")
	}
	if _, err := NewLayout(MP2(), Hierarchical, 512); err != nil {
		t.Errorf("512 rejected: %v", err)
	}
}

func TestHierarchicalOwnership(t *testing.T) {
	l := mustLayout(t, Hierarchical, 512) // 4x4 pixels per PE
	// Pixels 0..3 of a row are all on PE column 0.
	for c := 0; c < 4; c++ {
		if px, _ := l.OwnerPE(0, c); px != 0 {
			t.Errorf("col %d owned by PE column %d", c, px)
		}
	}
	if px, _ := l.OwnerPE(0, 4); px != 1 {
		t.Error("col 4 not on PE column 1")
	}
}

func TestCutAndStackOwnership(t *testing.T) {
	l := mustLayout(t, CutAndStack, 512)
	// Adjacent logical pixels are always on adjacent PEs.
	p0, _ := l.OwnerPE(0, 0)
	p1, _ := l.OwnerPE(0, 1)
	if p0 == p1 {
		t.Error("cut-and-stack put adjacent pixels on the same PE")
	}
	// Column 128 wraps to PE column 0 (next layer).
	if px, _ := l.OwnerPE(0, 128); px != 0 {
		t.Error("layer wrap broken")
	}
}

func TestCrossingFractions(t *testing.T) {
	hier := mustLayout(t, Hierarchical, 512)
	cut := mustLayout(t, CutAndStack, 512)
	// Hierarchical with 4 pixels per PE per dimension: a distance-1
	// shift crosses for exactly 1/4 of pixels.
	if f := hier.CrossingFraction(1); math.Abs(f-0.25) > 1e-12 {
		t.Errorf("hierarchical crossing fraction %g, want 0.25", f)
	}
	// Cut-and-stack: every distance-1 shift crosses a PE boundary.
	if f := cut.CrossingFraction(1); f != 1 {
		t.Errorf("cut-and-stack crossing fraction %g, want 1", f)
	}
	// Zero shift crosses nothing.
	if hier.RowShiftCrossings(0) != 0 {
		t.Error("zero shift crossed boundaries")
	}
	// Shift by a full PE-subimage width crosses everything even under
	// hierarchical layout.
	if f := hier.CrossingFraction(4); f != 1 {
		t.Errorf("full-block shift fraction %g, want 1", f)
	}
}

func TestCrossingPeriodicity(t *testing.T) {
	l := mustLayout(t, Hierarchical, 512)
	if l.RowShiftCrossings(3) != l.RowShiftCrossings(3+512) {
		t.Error("crossings not periodic in the image size")
	}
	if l.RowShiftCrossings(-1) != l.RowShiftCrossings(511) {
		t.Error("negative shifts not normalized")
	}
}

func TestMeasuredShiftCheaperHierarchical(t *testing.T) {
	hier := mustLayout(t, Hierarchical, 512)
	cut := mustLayout(t, CutAndStack, 512)
	if hier.MeasuredShiftCycles(1) >= cut.MeasuredShiftCycles(1) {
		t.Errorf("hierarchical shift (%g cycles) not cheaper than cut-and-stack (%g)",
			hier.MeasuredShiftCycles(1), cut.MeasuredShiftCycles(1))
	}
}

func TestMeasuredDecomposeTimeAgreesWithModel(t *testing.T) {
	// The measured-crossing price should land in the same range as the
	// closed-form model for the calibrated configuration and preserve
	// the hierarchical < cut-and-stack ordering.
	m := MP2()
	for _, virt := range []Virtualization{Hierarchical, CutAndStack} {
		l := mustLayout(t, virt, 512)
		measured, err := l.MeasuredDecomposeTime(Systolic, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		model, err := m.DecomposeTime(Systolic, virt, 512, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		if measured < model*0.5 || measured > model*2 {
			t.Errorf("%v: measured %g vs model %g diverge > 2x", virt, measured, model)
		}
	}
	h := mustLayout(t, Hierarchical, 512)
	c := mustLayout(t, CutAndStack, 512)
	th, _ := h.MeasuredDecomposeTime(Systolic, 8, 1)
	tc, _ := c.MeasuredDecomposeTime(Systolic, 8, 1)
	if th >= tc {
		t.Errorf("measured: hierarchical %g >= cut-and-stack %g", th, tc)
	}
}

func TestMeasuredDecomposeValidation(t *testing.T) {
	l := mustLayout(t, Hierarchical, 512)
	if _, err := l.MeasuredDecomposeTime(Systolic, 8, 0); err == nil {
		t.Error("levels=0 accepted")
	}
	if _, err := l.MeasuredDecomposeTime(Systolic, 8, 30); err == nil {
		t.Error("absurd depth accepted")
	}
}

func TestDilutionMeasuredShiftGrowsWithLevel(t *testing.T) {
	l := mustLayout(t, Hierarchical, 512)
	if l.MeasuredShiftCycles(8) <= l.MeasuredShiftCycles(1) {
		t.Error("long diluted shifts not more expensive")
	}
}
