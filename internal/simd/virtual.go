package simd

import "fmt"

// Virtualization layouts, made functional: when the image is larger than
// the PE array, each logical pixel is owned by a physical PE, and a
// systolic shift is an X-net transfer only when source and destination
// pixels live on different PEs. Counting the actual boundary crossings of
// each layout grounds the cost model's locality claim ("the hierarchical
// gave the best results since it improves data locality").

// Layout maps an n×n logical pixel array onto a machine's PE grid.
type Layout struct {
	M    *Machine
	Virt Virtualization
	// N is the logical (image) side length.
	N int
}

// NewLayout validates and builds a layout. n must be a multiple of both
// grid dimensions.
func NewLayout(m *Machine, virt Virtualization, n int) (*Layout, error) {
	if n < m.GridX || n%m.GridX != 0 || n%m.GridY != 0 {
		return nil, fmt.Errorf("simd: image side %d not a multiple of the %dx%d PE grid", n, m.GridX, m.GridY)
	}
	return &Layout{M: m, Virt: virt, N: n}, nil
}

// OwnerPE returns the physical PE coordinates owning logical pixel (r, c).
//
// Hierarchical assigns each PE a contiguous (N/GridY)×(N/GridX) subimage;
// cut-and-stack tiles the image into PE-array-sized layers, so adjacent
// logical pixels always land on adjacent *physical* PEs.
func (l *Layout) OwnerPE(r, c int) (px, py int) {
	switch l.Virt {
	case Hierarchical:
		return c / (l.N / l.M.GridX), r / (l.N / l.M.GridY)
	default: // CutAndStack
		return c % l.M.GridX, r % l.M.GridY
	}
}

// RowShiftCrossings returns how many of the N² logical pixels change
// physical PE under a horizontal toroidal shift by dist — the transfers
// that must use the X-net instead of PE-local memory.
func (l *Layout) RowShiftCrossings(dist int) int {
	dist = ((dist % l.N) + l.N) % l.N
	if dist == 0 {
		return 0
	}
	// Ownership depends only on the column, so count crossing columns
	// and multiply by N rows.
	crossCols := 0
	for c := 0; c < l.N; c++ {
		sx, _ := l.OwnerPE(0, (c+dist)%l.N)
		dx, _ := l.OwnerPE(0, c)
		if sx != dx {
			crossCols++
		}
	}
	return crossCols * l.N
}

// CrossingFraction is RowShiftCrossings(dist) over the logical pixel
// count.
func (l *Layout) CrossingFraction(dist int) float64 {
	return float64(l.RowShiftCrossings(dist)) / float64(l.N*l.N)
}

// MeasuredShiftCycles prices one systolic shift step of the given
// distance using the layout's measured boundary-crossing fraction: X-net
// cycles for crossing transfers (per hop), local-memory cycles otherwise.
func (l *Layout) MeasuredShiftCycles(dist int) float64 {
	frac := l.CrossingFraction(dist)
	// Crossing transfers travel ceil(dist / pixelsPerPE) physical hops
	// under hierarchical layout; exactly dist hops under cut-and-stack.
	hops := dist
	if l.Virt == Hierarchical {
		per := l.N / l.M.GridX
		hops = (dist + per - 1) / per
	}
	if hops < 1 {
		hops = 1
	}
	return frac*l.M.XNetCycles*float64(hops) + (1-frac)*l.M.MemShiftCycles
}

// MeasuredDecomposeTime prices a levels-deep decomposition like
// Machine.DecomposeTime but with shift costs from the layout's measured
// crossings instead of the closed-form approximation.
func (l *Layout) MeasuredDecomposeTime(alg Algorithm, f, levels int) (float64, error) {
	if levels <= 0 || f <= 0 {
		return 0, fmt.Errorf("simd: invalid f=%d levels=%d", f, levels)
	}
	if l.N%(1<<uint(levels)) != 0 {
		return 0, fmt.Errorf("simd: %d not divisible by 2^%d", l.N, levels)
	}
	m := l.M
	pes := float64(m.PEs())
	var cycles float64
	size := l.N
	for lvl := 0; lvl < levels; lvl++ {
		outputsPerPE := 2 * float64(size) * float64(size) / pes
		dist := 1
		if alg == Dilution {
			dist = 1 << uint(lvl)
		}
		step := m.BroadcastCycles + m.MACCycles + l.MeasuredShiftCycles(dist)
		cycles += outputsPerPE * float64(f) * step
		perOut := m.OutputCycles
		if alg == Systolic {
			perOut += m.RouterCycles
		}
		cycles += outputsPerPE * perOut
		cycles += m.LevelCycles
		size /= 2
	}
	return cycles / m.ClockHz, nil
}
