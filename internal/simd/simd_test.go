package simd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
	"wavelethpc/internal/wavelet"
)

func randSignal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func maxDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestSystolicConvolveMatchesDirect(t *testing.T) {
	x := randSignal(32, 1)
	for _, b := range []*filter.Bank{filter.Haar(), filter.Daubechies4(), filter.Daubechies8()} {
		acc := SystolicConvolve(x, b.DecLo)
		for i := range x {
			var want float64
			for k, hk := range b.DecLo {
				want += hk * x[(i+k)%len(x)]
			}
			if math.Abs(acc[i]-want) > 1e-12 {
				t.Fatalf("%s: acc[%d] = %g, want %g", b.Name, i, acc[i], want)
			}
		}
	}
}

func TestSystolicAnalyze1DMatchesWavelet(t *testing.T) {
	x := randSignal(64, 2)
	for _, b := range []*filter.Bank{filter.Haar(), filter.Daubechies8()} {
		sa, sd := SystolicAnalyze1D(x, b)
		wa, wd := wavelet.Analyze1D(x, b, filter.Periodic)
		if maxDiff(sa, wa) > 1e-12 || maxDiff(sd, wd) > 1e-12 {
			t.Errorf("%s: systolic != direct analysis", b.Name)
		}
	}
}

func TestShiftLeft(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	shiftLeft(a, 2)
	want := []float64{3, 4, 5, 1, 2}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("shiftLeft = %v, want %v", a, want)
		}
	}
	shiftLeft(a, 5) // full rotation is identity
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("full rotation changed contents: %v", a)
		}
	}
}

func TestRouterDecimate(t *testing.T) {
	got := RouterDecimate([]float64{0, 1, 2, 3, 4, 5})
	want := []float64{0, 2, 4}
	if maxDiff(got, want) != 0 {
		t.Errorf("RouterDecimate = %v", got)
	}
}

func TestDilutedConvolveMatchesStridedCorrelation(t *testing.T) {
	x := randSignal(32, 3)
	h := filter.Daubechies4().DecLo
	for _, stride := range []int{1, 2, 4} {
		acc := DilutedConvolve(x, h, stride)
		for i := range x {
			var want float64
			for k, hk := range h {
				want += hk * x[(i+k*stride)%len(x)]
			}
			if math.Abs(acc[i]-want) > 1e-12 {
				t.Fatalf("stride %d: acc[%d] = %g, want %g", stride, i, acc[i], want)
			}
		}
	}
}

func TestDilutedConvolvePanicsOnBadStride(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for stride 0")
		}
	}()
	DilutedConvolve([]float64{1}, []float64{1}, 0)
}

func TestDilutedDecompose1DMatchesMallat(t *testing.T) {
	x := randSignal(64, 4)
	for _, b := range []*filter.Bank{filter.Haar(), filter.Daubechies4(), filter.Daubechies8()} {
		for levels := 1; levels <= 3; levels++ {
			dil, err := DilutedDecompose1D(x, b, levels)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := wavelet.Decompose1D(x, b, filter.Periodic, levels)
			if err != nil {
				t.Fatal(err)
			}
			if maxDiff(dil.Approx, ref.Approx) > 1e-12 {
				t.Errorf("%s L=%d: approx mismatch", b.Name, levels)
			}
			for l := range ref.Details {
				if maxDiff(dil.Details[l], ref.Details[l]) > 1e-12 {
					t.Errorf("%s L=%d: detail level %d mismatch", b.Name, levels, l)
				}
			}
		}
	}
}

func TestDilutedDecomposeErrors(t *testing.T) {
	if _, err := DilutedDecompose1D(make([]float64, 12), filter.Haar(), 3); err == nil {
		t.Error("non-divisible length accepted")
	}
	if _, err := DilutedDecompose1D(make([]float64, 8), filter.Haar(), 0); err == nil {
		t.Error("zero levels accepted")
	}
}

func TestSystolicAnalyze2DMatchesWavelet(t *testing.T) {
	im := image.Landsat(32, 32, 7)
	b := filter.Daubechies8()
	sb := SystolicAnalyze2D(im, b)
	ref := wavelet.Analyze2D(im, b, filter.Periodic)
	for _, pair := range [][2]*image.Image{
		{sb.LL, ref.LL}, {sb.LH, ref.LH}, {sb.HL, ref.HL}, {sb.HH, ref.HH},
	} {
		if !image.Equal(pair[0], pair[1], 1e-12) {
			t.Fatal("systolic 2-D subband mismatch")
		}
	}
}

func TestSystolicDecomposePyramid(t *testing.T) {
	im := image.Landsat(64, 64, 8)
	p, err := SystolicDecompose(im, filter.Daubechies4(), 3)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := wavelet.Decompose(im, filter.Daubechies4(), filter.Periodic, 3)
	if !image.Equal(p.Approx, ref.Approx, 1e-10) {
		t.Error("pyramid approx mismatch")
	}
	// A systolic pyramid reconstructs the original image.
	back := wavelet.Reconstruct(p)
	if !image.Equal(im, back, 1e-8) {
		t.Error("systolic pyramid does not reconstruct")
	}
}

func TestMP2CalibrationMatchesTable1(t *testing.T) {
	want := [3]float64{0.0169, 0.0138, 0.0123}
	got := Table1MasPar()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.02*want[i] {
			t.Errorf("config %d: %g s, want %g ± 2%%", i, got[i], want[i])
		}
	}
}

func TestMasParTwoOrdersFasterThanWorkstation(t *testing.T) {
	// The paper's headline: "two orders of magnitude improvement over a
	// workstation". DEC 5000 F8/L1 was 5.47 s vs MasPar 0.0169 s.
	mas := Table1MasPar()
	ratio := 5.47 / mas[0]
	if ratio < 100 {
		t.Errorf("MasPar/workstation ratio = %.0f, want >= 100", ratio)
	}
}

func TestRealTimeRate(t *testing.T) {
	// "capable of processing 30 images or more per second"
	mas := Table1MasPar()
	for i, s := range mas {
		if rate := ImagesPerSecond(s); rate < 30 {
			t.Errorf("config %d: %.1f images/s, want >= 30", i, rate)
		}
	}
	if ImagesPerSecond(0) != 0 {
		t.Error("ImagesPerSecond(0) should be 0")
	}
}

func TestHierarchicalBeatsCutAndStack(t *testing.T) {
	// The paper: "The hierarchical gave the best results since it
	// improves data locality."
	m := MP2()
	for _, alg := range []Algorithm{Systolic, Dilution} {
		h, err := m.DecomposeTime(alg, Hierarchical, 512, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		c, err := m.DecomposeTime(alg, CutAndStack, 512, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		if h >= c {
			t.Errorf("%v: hierarchical %g >= cut-and-stack %g", alg, h, c)
		}
	}
}

func TestDilutionAvoidsRouterCost(t *testing.T) {
	// At one level the dilution algorithm does the same shifts but skips
	// the router, so it must be faster; at deep levels its stretched
	// shifts grow as 2^level.
	m := MP2()
	sys1, _ := m.DecomposeTime(Systolic, Hierarchical, 512, 8, 1)
	dil1, _ := m.DecomposeTime(Dilution, Hierarchical, 512, 8, 1)
	if dil1 >= sys1 {
		t.Errorf("L=1: dilution %g not faster than systolic %g", dil1, sys1)
	}
	// Per-step cost comparison at deep levels.
	if m.stepCycles(Dilution, Hierarchical, 4) <= m.stepCycles(Systolic, Hierarchical, 4) {
		t.Error("dilution shift cost does not grow with level")
	}
}

func TestMP1SlowerThanMP2(t *testing.T) {
	t1, _ := MP1().DecomposeTime(Systolic, Hierarchical, 512, 8, 1)
	t2, _ := MP2().DecomposeTime(Systolic, Hierarchical, 512, 8, 1)
	if t1 <= t2*2 {
		t.Errorf("MP-1 (%g) not substantially slower than MP-2 (%g)", t1, t2)
	}
}

func TestDecomposeTimeValidation(t *testing.T) {
	m := MP2()
	if _, err := m.DecomposeTime(Systolic, Hierarchical, 0, 8, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := m.DecomposeTime(Systolic, Hierarchical, 100, 8, 3); err == nil {
		t.Error("non-divisible size accepted")
	}
}

func TestStringers(t *testing.T) {
	if Systolic.String() != "systolic" || Dilution.String() != "dilution" {
		t.Error("Algorithm.String wrong")
	}
	if Hierarchical.String() != "hierarchical" || CutAndStack.String() != "cut-and-stack" {
		t.Error("Virtualization.String wrong")
	}
	if MP2().PEs() != 16384 {
		t.Error("MP2 PE count wrong")
	}
}

func TestSystolicEquivalenceProperty(t *testing.T) {
	// Property: for random signals and any bank, systolic analysis equals
	// direct analysis.
	banks := []*filter.Bank{filter.Haar(), filter.Daubechies4(), filter.Daubechies6(), filter.Daubechies8()}
	f := func(seed int64, bi uint8) bool {
		b := banks[int(bi)%len(banks)]
		x := randSignal(32, seed)
		sa, sd := SystolicAnalyze1D(x, b)
		wa, wd := wavelet.Analyze1D(x, b, filter.Periodic)
		return maxDiff(sa, wa) < 1e-10 && maxDiff(sd, wd) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDilutedDecompose2DMatchesMallat(t *testing.T) {
	im := image.Landsat(64, 64, 12)
	for _, b := range []*filter.Bank{filter.Haar(), filter.Daubechies4(), filter.Daubechies8()} {
		for levels := 1; levels <= 3; levels++ {
			dil, err := DilutedDecompose2D(im, b, levels)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := wavelet.Decompose(im, b, filter.Periodic, levels)
			if err != nil {
				t.Fatal(err)
			}
			if !image.Equal(dil.Approx, ref.Approx, 1e-10) {
				t.Errorf("%s L=%d: approx mismatch", b.Name, levels)
			}
			for l := range ref.Levels {
				if !image.Equal(dil.Levels[l].LH, ref.Levels[l].LH, 1e-10) ||
					!image.Equal(dil.Levels[l].HL, ref.Levels[l].HL, 1e-10) ||
					!image.Equal(dil.Levels[l].HH, ref.Levels[l].HH, 1e-10) {
					t.Errorf("%s L=%d: detail level %d mismatch", b.Name, levels, l)
				}
			}
		}
	}
}

func TestDilutedDecompose2DReconstructs(t *testing.T) {
	im := image.Landsat(32, 32, 13)
	p, err := DilutedDecompose2D(im, filter.Daubechies8(), 2)
	if err != nil {
		t.Fatal(err)
	}
	back := wavelet.Reconstruct(p)
	if !image.Equal(im, back, 1e-8) {
		t.Error("dilution pyramid does not reconstruct the image")
	}
}

func TestDilutedDecompose2DValidation(t *testing.T) {
	if _, err := DilutedDecompose2D(image.New(32, 64), filter.Haar(), 1); err == nil {
		t.Error("non-square image accepted")
	}
	if _, err := DilutedDecompose2D(image.New(30, 30), filter.Haar(), 2); err == nil {
		t.Error("non-divisible image accepted")
	}
}

func TestSystolicConvolveRightMatchesDirect(t *testing.T) {
	x := randSignal(32, 21)
	h := filter.Daubechies8().DecLo
	acc := SystolicConvolveRight(x, h)
	for i := range x {
		var want float64
		for k, hk := range h {
			want += hk * x[((i-k)%32+32)%32]
		}
		if math.Abs(acc[i]-want) > 1e-12 {
			t.Fatalf("acc[%d] = %g, want %g", i, acc[i], want)
		}
	}
}

func TestSystolicSynthesize1DMatchesWavelet(t *testing.T) {
	x := randSignal(64, 22)
	for _, b := range []*filter.Bank{filter.Haar(), filter.Daubechies4(), filter.Daubechies8()} {
		a, d := wavelet.Analyze1D(x, b, filter.Periodic)
		got := SystolicSynthesize1D(a, d, b)
		want := wavelet.Synthesize1D(a, d, b, filter.Periodic)
		if maxDiff(got, want) > 1e-10 {
			t.Errorf("%s: systolic synthesis diverges by %g", b.Name, maxDiff(got, want))
		}
		if maxDiff(got, x) > 1e-9 {
			t.Errorf("%s: systolic synthesis does not invert analysis", b.Name)
		}
	}
}

func TestSystolicReconstructFullPyramid(t *testing.T) {
	im := image.Landsat(64, 64, 23)
	for _, levels := range []int{1, 3} {
		p, err := SystolicDecompose(im, filter.Daubechies8(), levels)
		if err != nil {
			t.Fatal(err)
		}
		back := SystolicReconstruct(p)
		if !image.Equal(im, back, 1e-8) {
			t.Errorf("L=%d: systolic round trip failed", levels)
		}
	}
}

func TestShiftRight(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	shiftRight(a, 1)
	want := []float64{4, 1, 2, 3}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("shiftRight = %v", a)
		}
	}
}

func TestDiluteReExport(t *testing.T) {
	got := Dilute([]float64{1, 2}, 3)
	want := []float64{1, 0, 0, 2}
	if len(got) != 4 || got[0] != want[0] || got[3] != want[3] {
		t.Errorf("Dilute = %v", got)
	}
}
