package simd

import (
	"fmt"

	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
	"wavelethpc/internal/wavelet"
)

// DilutedDecompose2D runs the full multi-level 2-D decomposition with the
// dilution algorithm: coefficients never move through the global router —
// they stay at their array positions, with live positions striding
// 2^level apart in both dimensions, and the filters diluted to match.
// Separate low- and high-pass planes model the second PE memory plane a
// real MasPar implementation uses. The extracted pyramid is identical to
// wavelet.Decompose.
func DilutedDecompose2D(im *image.Image, bank *filter.Bank, levels int) (*wavelet.Pyramid, error) {
	if err := wavelet.CheckDecomposable(im.Rows, im.Cols, levels); err != nil {
		return nil, err
	}
	if im.Rows != im.Cols {
		return nil, fmt.Errorf("simd: dilution plane model needs a square image, got %dx%d", im.Rows, im.Cols)
	}
	n := im.Rows
	p := &wavelet.Pyramid{Bank: bank, Ext: filter.Periodic, Levels: make([]wavelet.DetailBands, levels)}

	// live holds the current approximation coefficients in place at
	// stride-aligned positions.
	live := im.Clone()
	rowBuf := make([]float64, n)
	colBuf := make([]float64, n)

	for l := 0; l < levels; l++ {
		stride := 1 << uint(l)
		// Row pass on every live row: diluted convolution along x into
		// the L and H planes.
		planeL := image.New(n, n)
		planeH := image.New(n, n)
		for r := 0; r < n; r += stride {
			copy(rowBuf, live.Row(r))
			lo := DilutedConvolve(rowBuf, bank.DecLo, stride)
			hi := DilutedConvolve(rowBuf, bank.DecHi, stride)
			copy(planeL.Row(r), lo)
			copy(planeH.Row(r), hi)
		}
		// Column pass on every live column of each plane.
		outStride := 2 * stride
		ll := image.New(n, n)
		lh := image.New(n, n)
		hl := image.New(n, n)
		hh := image.New(n, n)
		for c := 0; c < n; c += outStride {
			colBuf = planeL.Col(c, colBuf)
			ll.SetCol(c, DilutedConvolve(colBuf, bank.DecLo, stride))
			lh.SetCol(c, DilutedConvolve(colBuf, bank.DecHi, stride))
			colBuf = planeH.Col(c, colBuf)
			hl.SetCol(c, DilutedConvolve(colBuf, bank.DecLo, stride))
			hh.SetCol(c, DilutedConvolve(colBuf, bank.DecHi, stride))
		}
		p.Levels[levels-1-l] = wavelet.DetailBands{
			LH: extractStrided2D(lh, outStride),
			HL: extractStrided2D(hl, outStride),
			HH: extractStrided2D(hh, outStride),
		}
		live = ll
	}
	p.Approx = extractStrided2D(live, 1<<uint(levels))
	return p, nil
}

// extractStrided2D gathers the stride-aligned positions of a plane into a
// dense image (the final read-out; on the real machine the coefficients
// would simply stay distributed).
func extractStrided2D(plane *image.Image, s int) *image.Image {
	out := image.New(plane.Rows/s, plane.Cols/s)
	for r := 0; r < out.Rows; r++ {
		src := plane.Row(r * s)
		dst := out.Row(r)
		for c := 0; c < out.Cols; c++ {
			dst[c] = src[c*s]
		}
	}
	return out
}
