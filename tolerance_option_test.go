package wavelethpc

import (
	"errors"
	"math"
	"testing"

	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
	"wavelethpc/internal/wavelet"
)

// Facade surface of the lifting tier: WithTolerance validation, routing
// through both the sequential and parallel paths, and the guarantee
// that tolerance 0 (or omitted) keeps the bit-identical default.

func facadeBitIdentical(t *testing.T, label string, a, b *Pyramid) {
	t.Helper()
	check := func(band string, x, y *image.Image) {
		for r := 0; r < x.Rows; r++ {
			rx, ry := x.Row(r), y.Row(r)
			for c := range rx {
				if math.Float64bits(rx[c]) != math.Float64bits(ry[c]) {
					t.Fatalf("%s/%s (%d,%d): %g vs %g", label, band, r, c, rx[c], ry[c])
				}
			}
		}
	}
	check("approx", a.Approx, b.Approx)
	for i := range a.Levels {
		check("LH", a.Levels[i].LH, b.Levels[i].LH)
		check("HL", a.Levels[i].HL, b.Levels[i].HL)
		check("HH", a.Levels[i].HH, b.Levels[i].HH)
	}
}

func TestWithToleranceValidation(t *testing.T) {
	im := image.Landsat(16, 16, 1)
	for _, eps := range []float64{-1, -1e-12, math.NaN(), math.Inf(1), math.Inf(-1)} {
		_, err := DecomposeWith(im, Daubechies8(), WithTolerance(eps))
		var ue *wavelet.UsageError
		if !errors.As(err, &ue) {
			t.Errorf("WithTolerance(%v): err = %v, want wrapped *wavelet.UsageError", eps, err)
		}
	}
}

// TestWithToleranceZeroBitIdentical: WithTolerance(0) and an omitted
// tolerance must land on the same bit patterns as the plain default —
// the presence of the lifting tier cannot change the default path.
func TestWithToleranceZeroBitIdentical(t *testing.T) {
	im := image.Landsat(64, 32, 7)
	def, err := DecomposeWith(im, Daubechies8(), WithLevels(3))
	if err != nil {
		t.Fatal(err)
	}
	zero, err := DecomposeWith(im, Daubechies8(), WithLevels(3), WithTolerance(0))
	if err != nil {
		t.Fatal(err)
	}
	facadeBitIdentical(t, "tol0", def, zero)
}

// TestWithToleranceDriftBounded: the opted-in tier stays within eps of
// the default on the sequential, parallel, and batch paths, and the
// parallel lifted output is bit-identical to the sequential lifted one.
func TestWithToleranceDriftBounded(t *testing.T) {
	sch := wavelet.LiftingFor(filter.Daubechies8(), filter.Periodic, 1)
	if sch == nil {
		t.Fatal("db8/periodic should admit lifting")
	}
	eps := sch.Eps
	im := image.Landsat(64, 64, 5)
	ref, err := DecomposeWith(im, Daubechies8(), WithLevels(3))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := DecomposeWith(im, Daubechies8(), WithLevels(3), WithTolerance(eps))
	if err != nil {
		t.Fatal(err)
	}
	var maxDiff, maxRef float64
	drift := func(a, b *image.Image) {
		for r := 0; r < a.Rows; r++ {
			ra, rb := a.Row(r), b.Row(r)
			for c := range ra {
				maxDiff = math.Max(maxDiff, math.Abs(ra[c]-rb[c]))
				maxRef = math.Max(maxRef, math.Abs(ra[c]))
			}
		}
	}
	drift(ref.Approx, seq.Approx)
	for i := range ref.Levels {
		drift(ref.Levels[i].LH, seq.Levels[i].LH)
		drift(ref.Levels[i].HL, seq.Levels[i].HL)
		drift(ref.Levels[i].HH, seq.Levels[i].HH)
	}
	if maxDiff/maxRef > eps {
		t.Errorf("lifted drift %.3g exceeds eps %.3g", maxDiff/maxRef, eps)
	}

	par, err := DecomposeWith(im, Daubechies8(), WithLevels(3), WithTolerance(eps), WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	facadeBitIdentical(t, "parallel-vs-sequential-lifted", seq, par)

	batch, err := DecomposeAllWith([]*Image{im, im}, Daubechies8(), WithLevels(3), WithTolerance(eps))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range batch {
		facadeBitIdentical(t, "batch-lifted", seq, p)
	}
}

// TestWithToleranceFallsBackOffPeriodic: symmetric extension cannot ride
// the lifting tier; a tolerant request must still be bit-identical to
// the default convolution output there.
func TestWithToleranceFallsBackOffPeriodic(t *testing.T) {
	im := image.Landsat(32, 32, 3)
	def, err := DecomposeWith(im, Daubechies8(), WithLevels(2), WithExtension(Symmetric))
	if err != nil {
		t.Fatal(err)
	}
	tol, err := DecomposeWith(im, Daubechies8(), WithLevels(2), WithExtension(Symmetric), WithTolerance(1e-6))
	if err != nil {
		t.Fatal(err)
	}
	facadeBitIdentical(t, "symmetric-fallback", def, tol)
}
