package wavelethpc

import (
	"errors"
	"fmt"
	"testing"

	"wavelethpc/internal/filter"
	"wavelethpc/internal/image"
	"wavelethpc/internal/wavelet"
)

// The options-facade equivalence suite: DecomposeWith must be
// byte-identical (math.Float64bits per pixel) to the deprecated entry
// points it replaces AND to the reference transform, for every bank and
// a spread of shapes. This is the acceptance gate for the facade
// redesign — delegation is proven, not assumed.

var facadeBanks = []struct {
	name string
	bank *FilterBank
}{
	{"haar", Haar()},
	{"db4", Daubechies4()},
	{"db6", Daubechies6()},
	{"db8", Daubechies8()},
}

var facadeShapes = []struct {
	rows, cols, levels int
}{
	{32, 32, 2},
	{64, 32, 3},
	{48, 16, 2},
}

func requireSamePyramidBits(t *testing.T, label string, want, got *Pyramid) {
	t.Helper()
	if want.Depth() != got.Depth() {
		t.Fatalf("%s: depth %d vs %d", label, want.Depth(), got.Depth())
	}
	if !image.EqualBits(want.Approx, got.Approx) {
		t.Fatalf("%s: approximation bits differ", label)
	}
	for i := range want.Levels {
		if !image.EqualBits(want.Levels[i].LH, got.Levels[i].LH) ||
			!image.EqualBits(want.Levels[i].HL, got.Levels[i].HL) ||
			!image.EqualBits(want.Levels[i].HH, got.Levels[i].HH) {
			t.Fatalf("%s: detail level %d bits differ", label, i)
		}
	}
}

func TestDecomposeWithMatchesDeprecatedAndReference(t *testing.T) {
	for _, b := range facadeBanks {
		for _, sh := range facadeShapes {
			t.Run(fmt.Sprintf("%s_%dx%d_L%d", b.name, sh.rows, sh.cols, sh.levels), func(t *testing.T) {
				im := Landsat(sh.rows, sh.cols, 42)
				ref, err := wavelet.DecomposeReference(im, b.bank, filter.Periodic, sh.levels)
				if err != nil {
					t.Fatal(err)
				}
				oldP, err := Decompose(im, b.bank, sh.levels)
				if err != nil {
					t.Fatal(err)
				}
				newP, err := DecomposeWith(im, b.bank, WithLevels(sh.levels))
				if err != nil {
					t.Fatal(err)
				}
				requireSamePyramidBits(t, "deprecated vs options", oldP, newP)
				requireSamePyramidBits(t, "options vs reference", ref, newP)
			})
		}
	}
}

func TestParallelDecomposeMatchesWithWorkers(t *testing.T) {
	im := Landsat(64, 64, 7)
	for _, b := range facadeBanks {
		for _, workers := range []int{0, 1, 3} {
			seq, err := DecomposeWith(im, b.bank, WithLevels(3))
			if err != nil {
				t.Fatal(err)
			}
			oldP, err := ParallelDecompose(im, b.bank, 3, workers)
			if err != nil {
				t.Fatal(err)
			}
			newP, err := DecomposeWith(im, b.bank, WithLevels(3), WithWorkers(workers))
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("%s workers=%d", b.name, workers)
			requireSamePyramidBits(t, label+" deprecated vs options", oldP, newP)
			requireSamePyramidBits(t, label+" parallel vs sequential", seq, newP)
		}
	}
}

func TestDecomposeAllWithMatchesBatch(t *testing.T) {
	images := LandsatBands(32, 32, 5, 11)
	bank := Daubechies8()
	oldPs, err := DecomposeBatch(images, bank, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	newPs, err := DecomposeAllWith(images, bank, WithLevels(2), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defaulted, err := DecomposeAllWith(images, bank, WithLevels(2)) // workers default GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	if len(oldPs) != len(images) || len(newPs) != len(images) {
		t.Fatalf("lengths: old %d, new %d, want %d", len(oldPs), len(newPs), len(images))
	}
	for i := range images {
		single, err := DecomposeWith(images[i], bank, WithLevels(2))
		if err != nil {
			t.Fatal(err)
		}
		requireSamePyramidBits(t, fmt.Sprintf("image %d deprecated vs options", i), oldPs[i], newPs[i])
		requireSamePyramidBits(t, fmt.Sprintf("image %d batch vs single", i), single, newPs[i])
		requireSamePyramidBits(t, fmt.Sprintf("image %d default workers", i), single, defaulted[i])
	}
}

func TestWithExtensionSelectsBorderPolicy(t *testing.T) {
	im := Landsat(32, 32, 5)
	bank := Daubechies4()
	for _, ext := range []Extension{Periodic, Symmetric, Zero} {
		want, err := wavelet.DecomposeReference(im, bank, ext, 2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecomposeWith(im, bank, WithLevels(2), WithExtension(ext))
		if err != nil {
			t.Fatal(err)
		}
		requireSamePyramidBits(t, fmt.Sprintf("extension %v", ext), want, got)
	}
}

// TestOptionValidation: every misuse surfaces as an error wrapping
// *wavelet.UsageError — the facade never panics on bad input.
func TestOptionValidation(t *testing.T) {
	im := Landsat(32, 32, 1)
	bank := Haar()
	cases := []struct {
		name string
		err  func() error
	}{
		{"nil image", func() error { _, err := DecomposeWith(nil, bank); return err }},
		{"nil bank", func() error { _, err := DecomposeWith(im, nil); return err }},
		{"nil option", func() error { _, err := DecomposeWith(im, bank, nil); return err }},
		{"levels 0", func() error { _, err := DecomposeWith(im, bank, WithLevels(0)); return err }},
		{"levels -2", func() error { _, err := DecomposeWith(im, bank, WithLevels(-2)); return err }},
		{"workers -1", func() error { _, err := DecomposeWith(im, bank, WithWorkers(-1)); return err }},
		{"bad extension", func() error { _, err := DecomposeWith(im, bank, WithExtension(Extension(99))); return err }},
		{"batch nil image", func() error {
			_, err := DecomposeAllWith([]*Image{im, nil}, bank, WithLevels(1))
			return err
		}},
		{"batch nil bank", func() error { _, err := DecomposeAllWith([]*Image{im}, nil); return err }},
	}
	for _, c := range cases {
		err := c.err()
		var ue *wavelet.UsageError
		if !errors.As(err, &ue) {
			t.Errorf("%s: err = %v, want wrapped *wavelet.UsageError", c.name, err)
		}
	}

	// Dimensional misuse is an error too, not a panic.
	if _, err := DecomposeWith(Landsat(10, 10, 1), bank, WithLevels(2)); err == nil {
		t.Error("10x10 at 2 levels: want error, got nil")
	}
}

// TestGuardDecomposeShield: the facade's recover shield converts
// internal contract-violation panics (*wavelet.UsageError) to errors
// and re-raises everything else untouched.
func TestGuardDecomposeShield(t *testing.T) {
	_, err := guardDecompose(func() (*Pyramid, error) {
		panic(&wavelet.UsageError{Op: "test", Detail: "synthetic violation"})
	})
	var ue *wavelet.UsageError
	if !errors.As(err, &ue) || ue.Op != "test" {
		t.Fatalf("err = %v, want wrapped synthetic *wavelet.UsageError", err)
	}

	defer func() {
		if r := recover(); r != "unrelated" {
			t.Fatalf("recovered %v, want the unrelated panic to pass through", r)
		}
	}()
	guardDecompose(func() (*Pyramid, error) { panic("unrelated") })
}
