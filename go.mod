module wavelethpc

go 1.22
