package wavelethpc

import (
	"errors"
	"testing"

	"wavelethpc/internal/filter"
)

// WithBank facade coverage: name resolution, conflict rules, and the
// typed unknown-name error surfacing through the options layer.

func TestWithBankMatchesPositionalBank(t *testing.T) {
	im := Landsat(64, 64, 3)
	for _, name := range []string{"haar", "db8", "sym5", "bior4.4", "cdf5/3"} {
		bank, err := FilterByName(name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := DecomposeWith(im, bank, WithLevels(2))
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecomposeWith(im, nil, WithBank(name), WithLevels(2))
		if err != nil {
			t.Fatalf("WithBank(%q): %v", name, err)
		}
		requireSamePyramidBits(t, name, want, got)
	}
}

func TestWithBankUnknownName(t *testing.T) {
	im := Landsat(32, 32, 1)
	_, err := DecomposeWith(im, nil, WithBank("db5"))
	if err == nil {
		t.Fatal("unknown bank name accepted")
	}
	var ube *filter.UnknownBankError
	if !errors.As(err, &ube) {
		t.Fatalf("err = %v (%T), want wrapped *filter.UnknownBankError", err, err)
	}
	if ube.Name != "db5" {
		t.Errorf("Name = %q, want db5", ube.Name)
	}
}

func TestWithBankConflictsWithPositional(t *testing.T) {
	im := Landsat(32, 32, 1)
	if _, err := DecomposeWith(im, Haar(), WithBank("db4")); err == nil {
		t.Error("positional bank + WithBank accepted")
	}
}

func TestWithBankAliases(t *testing.T) {
	// The paper's F2/F4/F6/F8 aliases resolve through the option too.
	im := Landsat(32, 32, 5)
	want, err := DecomposeWith(im, Daubechies8(), WithLevels(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecomposeWith(im, nil, WithBank("f8"), WithLevels(1))
	if err != nil {
		t.Fatal(err)
	}
	requireSamePyramidBits(t, "f8", want, got)
}

func TestBanksCatalog(t *testing.T) {
	names := Banks()
	if len(names) < 18 {
		t.Fatalf("Banks() lists %d names, want >= 18", len(names))
	}
	for _, name := range names {
		b, err := FilterByName(name)
		if err != nil {
			t.Errorf("FilterByName(%q): %v", name, err)
			continue
		}
		if b.Name != name {
			t.Errorf("FilterByName(%q).Name = %q", name, b.Name)
		}
	}
}

func TestFacadeWHT(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y, err := WHT1D(x)
	if err != nil {
		t.Fatal(err)
	}
	back, err := WHT1D(y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if d := back[i] - x[i]; d > 1e-10 || d < -1e-10 {
			t.Fatalf("WHT1D involution drift at %d: %g", i, d)
		}
	}
	if _, err := WHT1D(make([]float64, 3)); err == nil {
		t.Error("WHT1D accepted length 3")
	}

	im := Landsat(16, 16, 2)
	w, err := WHT2D(im)
	if err != nil {
		t.Fatal(err)
	}
	back2, err := WHT2D(w)
	if err != nil {
		t.Fatal(err)
	}
	if p := PSNR(im, back2); p < 200 {
		t.Errorf("WHT2D involution PSNR = %g dB, want machine precision", p)
	}
}
